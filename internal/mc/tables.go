package mc

import (
	"repro/internal/geom"
	"repro/internal/optics"
)

// regionOpt is the per-region optical table entry the hot loop reads instead
// of calling Geometry.Props per event: every derived quantity the
// hop–drop–spin loop needs, precomputed once per normalised Config.
type regionOpt struct {
	MuA     float64
	G       float64
	N       float64
	InvMuT  float64 // 1/µt; meaningless when !Interacting
	AbsFrac float64 // µa/µt, the dropped weight fraction per interaction

	// Henyey–Greenstein constants: cosθ = (HgB − f²)·HgHalfInvG with
	// f = HgA/(HgK + Hg2G·ξ), precomputed so the spin costs one uniform
	// draw and one division.
	HgA, HgB, HgK, Hg2G, HgHalfInvG float64

	// Interacting is false for µt = 0 (CSF-like void) regions, which
	// propagate straight to their boundary.
	Interacting bool
	// HgIso marks isotropic scattering (g = 0), sampled as 2ξ−1.
	HgIso bool
}

// sampleHG draws the Henyey–Greenstein polar scattering cosine for this
// region from the uniform deviate xi, using the precomputed constants. It
// matches rng.HenyeyGreenstein exactly up to float rounding.
func (o *regionOpt) sampleHG(xi float64) float64 {
	if o.HgIso {
		return 2*xi - 1
	}
	f := o.HgA / (o.HgK + o.Hg2G*xi)
	cos := (o.HgB - f*f) * o.HgHalfInvG
	// Numerical guard: keep strictly inside [-1, 1].
	if cos < -1 {
		cos = -1
	} else if cos > 1 {
		cos = 1
	}
	return cos
}

// buildRegionTable precomputes the optical table for every region of g.
func buildRegionTable(g geom.Geometry) []regionOpt {
	opt := make([]regionOpt, g.NumRegions())
	for r := range opt {
		p := g.Props(r)
		o := regionOpt{MuA: p.MuA, G: p.G, N: p.N}
		if mut := p.MuT(); mut > 0 {
			o.InvMuT = 1 / mut
			o.AbsFrac = p.MuA / mut
			o.Interacting = true
		}
		if g := p.G; g == 0 {
			o.HgIso = true
		} else {
			o.HgA = 1 - g*g
			o.HgB = 1 + g*g
			o.HgK = 1 - g
			o.Hg2G = 2 * g
			o.HgHalfInvG = 1 / (2 * g)
		}
		opt[r] = o
	}
	return opt
}

// layerFace is the precomputed Fresnel context of one oriented layer
// interface (crossing layer r downward or upward): everything cross-layer
// resolution needs without touching the tissue model.
type layerFace struct {
	next    int     // region beyond the face (== r at an exit face)
	n1, n2  float64 // refractive indices on this / the far side
	eta     float64 // n1/n2
	critCos float64 // TIR when |uz| ≤ critCos (0 when n1 ≤ n2)
	matched bool    // n1 == n2: no Fresnel event at all
	exit    geom.ExitKind
}

// layeredGeom is the devirtualised layered fast path: the boundary planes
// and per-interface Fresnel tables of a geom.Layered stack, precomputed so
// the trace loop runs without interface calls. Built once per normalised
// Config and shared read-only by every kernel.
type layeredGeom struct {
	top, bot []float64   // z of layer r's top and bottom plane (bot may be +Inf)
	down, up []layerFace // faces crossed moving in +z / −z out of layer r
}

// buildLayeredGeom precomputes the fast-path tables for a layered stack.
func buildLayeredGeom(l geom.Layered) *layeredGeom {
	m := l.M
	n := m.NumLayers()
	lg := &layeredGeom{
		top:  make([]float64, n),
		bot:  make([]float64, n),
		down: make([]layerFace, n),
		up:   make([]layerFace, n),
	}
	for r := 0; r < n; r++ {
		lg.top[r] = m.Boundary(r)
		lg.bot[r] = m.Boundary(r + 1)
		n1 := m.Layers[r].Props.N

		d := layerFace{next: r + 1, n1: n1, n2: m.IndexBelow(r)}
		if r == n-1 {
			d.next = r
			d.exit = geom.ExitBottom
		}
		d.eta = n1 / d.n2
		d.critCos = optics.CriticalCos(n1, d.n2)
		d.matched = n1 == d.n2
		lg.down[r] = d

		u := layerFace{next: r - 1, n1: n1, n2: m.IndexAbove(r)}
		if r == 0 {
			u.next = 0
			u.exit = geom.ExitTop
		}
		u.eta = n1 / u.n2
		u.critCos = optics.CriticalCos(n1, u.n2)
		u.matched = n1 == u.n2
		lg.up[r] = u
	}
	return lg
}
