package mc

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/source"
	"repro/internal/tissue"
	"repro/internal/voxel"
)

// Spec is a fully serialisable simulation description: what the DataManager
// sends to worker clients. It contains only plain data (no interfaces), so
// it travels over encoding/gob unchanged. Exactly one of Model (layered
// slabs) or Voxel (heterogeneous voxel grid) describes the medium; when
// both are set the voxel grid wins.
type Spec struct {
	Model    tissue.Model
	Voxel    *voxel.Grid
	Source   source.Spec
	Detector detector.Spec
	Boundary BoundaryMode

	RouletteThreshold float64
	RouletteBoost     float64
	MaxEvents         int

	AbsGrid  *GridSpec
	PathGrid *GridSpec
	PathHist *HistSpec
	Radial   *HistSpec

	// TrackMoments enables chunk-level second-moment tracking
	// (Config.TrackMoments); precision-targeted jobs force it on. As a
	// zero-default bool it is omitted from legacy gob encodings, so
	// existing cache keys and checkpoints are unchanged.
	TrackMoments bool `json:",omitempty"`
}

// NewSpec captures a Config's serialisable parameters for a layered model.
// The Source and Detector must have been built from source.Spec /
// detector.Spec-expressible types; arbitrary user implementations cannot
// travel over the wire.
func NewSpec(model *tissue.Model, src source.Spec, det detector.Spec) *Spec {
	return &Spec{Model: *model, Source: src, Detector: det}
}

// NewVoxelSpec captures a serialisable description of a voxel-geometry
// simulation, the heterogeneous counterpart of NewSpec.
func NewVoxelSpec(g *voxel.Grid, src source.Spec, det detector.Spec) *Spec {
	return &Spec{Voxel: g, Source: src, Detector: det}
}

// Build materialises the Spec into a runnable Config.
func (s *Spec) Build() (*Config, error) {
	src, err := s.Source.New()
	if err != nil {
		return nil, err
	}
	det, err := s.Detector.New()
	if err != nil {
		return nil, err
	}
	cfg := &Config{
		Source:            src,
		Detector:          det,
		Gate:              s.Detector.Gate,
		Boundary:          s.Boundary,
		RouletteThreshold: s.RouletteThreshold,
		RouletteBoost:     s.RouletteBoost,
		MaxEvents:         s.MaxEvents,
		AbsGrid:           s.AbsGrid,
		PathGrid:          s.PathGrid,
		PathHist:          s.PathHist,
		Radial:            s.Radial,
		TrackMoments:      s.TrackMoments,
	}
	switch {
	case s.Voxel != nil:
		cfg.Geometry = s.Voxel
	case len(s.Model.Layers) > 0:
		model := s.Model // copy; layers slice is shared but never mutated
		cfg.Model = &model
	default:
		return nil, fmt.Errorf("mc: spec has neither a layered model nor a voxel grid")
	}
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Validate checks the Spec without building it.
func (s *Spec) Validate() error {
	if _, err := s.Build(); err != nil {
		return fmt.Errorf("mc: invalid spec: %w", err)
	}
	return nil
}
