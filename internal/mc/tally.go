package mc

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/stats"
)

// Tally accumulates every observable of a simulation. It is plain data
// (gob-serialisable) and merges associatively, so partial tallies computed
// by goroutines or remote workers reduce to exactly the same result in any
// order.
type Tally struct {
	// Launched is the number of photon packets launched.
	Launched int64

	// Weight bookkeeping; all weights are in units of launched packets.
	SpecularWeight float64 // reflected at the entry surface
	DiffuseWeight  float64 // escaped the top surface after entering (includes detected)
	TransmitWeight float64 // escaped the bottom of a finite medium
	AbsorbedWeight float64 // deposited in the tissue
	// LateralWeight is the weight escaping through the sides of a laterally
	// bounded geometry (voxel grids); layered slabs are laterally infinite
	// and never produce it.
	LateralWeight float64

	// RouletteGain/Loss record the weight created by roulette survival
	// boosts and destroyed by roulette kills. Exact per-run energy balance:
	// Launched + Gain − Loss = Specular + Diffuse + Transmit + Absorbed.
	RouletteGain float64
	RouletteLoss float64

	// Detection.
	DetectedCount  int64   // capture events (in deterministic mode a packet may split)
	DetectedWeight float64 // total detected weight
	GateRejected   float64 // weight that hit the detector but failed the pathlength gate

	// Detected-photon statistics: geometric pathlength (mm), optical
	// pathlength (Σ n·ds, mm), maximum depth (mm) and scattering events.
	PathStats    stats.Running
	OptPathStats stats.Running
	DepthStats   stats.Running
	ScatterStats stats.Running

	// Per-region observables, indexed by geometry region (layer index for
	// layered models, medium label for voxel grids). The field names keep
	// the layered-era "Layer" prefix for wire compatibility.
	LayerAbsorbed []float64 // absorbed weight per region
	// LayerReached[i] counts launched photons whose highest-indexed
	// excursion reached region i (each photon counted once). For layered
	// models and FromModel voxelizations region indices are depth-ordered,
	// so this is the deepest layer reached; for grids with appended
	// inclusion labels it is "highest label", and depth questions should
	// use DepthStats/maxZ instead. Counts are trajectory-based and only
	// physically meaningful in probabilistic boundary mode; use
	// LayerEnteredWeight for a mode-independent measure.
	LayerReached []int64
	// LayerEnteredWeight[i] accumulates the packet weight carried into
	// region i the first time each packet enters it (the launch region is
	// not counted) — for depth-ordered regions this is the
	// survival-weighted penetration probability, consistent across
	// boundary modes.
	LayerEnteredWeight []float64

	// Optional scoring structures (nil unless requested in the Config).
	AbsGrid  *grid.Grid3      // absorbed weight per voxel
	PathGrid *grid.Grid3      // detected-photon interaction sites per voxel
	PathHist *stats.Histogram // detected pathlength histogram
	Radial   *stats.Histogram // exit-radius histogram of all escaping photons

	// Moments, when Config.TrackMoments is set, carries the chunk-level
	// second moments of the headline observables — the uncertainty
	// estimate behind precision-targeted jobs. Nil on the legacy path,
	// which keeps every pre-moment encoding (gob checkpoints, compact
	// wire frames, golden JSON) byte-identical.
	Moments *Moments `json:",omitempty"`
}

// NewTally returns a tally sized for the given configuration.
func NewTally(cfg *Config) *Tally {
	regions := 0
	switch {
	case cfg.Geometry != nil:
		regions = cfg.Geometry.NumRegions()
	case cfg.Model != nil:
		regions = cfg.Model.NumLayers()
	}
	t := &Tally{
		LayerAbsorbed:      make([]float64, regions),
		LayerReached:       make([]int64, regions),
		LayerEnteredWeight: make([]float64, regions),
	}
	if gs := cfg.AbsGrid; gs != nil {
		t.AbsGrid = grid.NewCube(gs.N, gs.Edge)
	}
	if gs := cfg.PathGrid; gs != nil {
		t.PathGrid = grid.NewCube(gs.N, gs.Edge)
	}
	if h := cfg.PathHist; h != nil {
		t.PathHist = stats.NewHistogram(h.Min, h.Max, h.Bins)
	}
	if h := cfg.Radial; h != nil {
		t.Radial = stats.NewHistogram(h.Min, h.Max, h.Bins)
	}
	return t
}

// Merge folds o into t. Both tallies must come from the same Config.
// Merging a tally into itself is rejected: the scalar sums would silently
// double while the loops below read o's slices as they mutate t's, leaving
// the tally internally inconsistent.
//
// Merge is atomic on error: every shape check (region counts, grid
// geometry, histogram geometry) runs before the first field is mutated,
// so a rejected merge leaves t untouched. The distributed reducer relies
// on this — it requeues a rejected batch's chunks for recompute, which
// would double-count if a failed Merge had already absorbed the scalars.
func (t *Tally) Merge(o *Tally) error {
	if t == o {
		return fmt.Errorf("mc: tally cannot be merged into itself")
	}
	if len(o.LayerAbsorbed) != len(t.LayerAbsorbed) {
		return fmt.Errorf("mc: merging tallies with %d vs %d layers",
			len(t.LayerAbsorbed), len(o.LayerAbsorbed))
	}
	if o.AbsGrid != nil && t.AbsGrid != nil && !t.AbsGrid.CompatibleWith(o.AbsGrid) {
		return fmt.Errorf("mc: merging tallies with incompatible absorption grids")
	}
	if o.PathGrid != nil && t.PathGrid != nil && !t.PathGrid.CompatibleWith(o.PathGrid) {
		return fmt.Errorf("mc: merging tallies with incompatible path grids")
	}
	if o.PathHist != nil && t.PathHist != nil &&
		(o.PathHist.Min != t.PathHist.Min || o.PathHist.Max != t.PathHist.Max ||
			len(o.PathHist.Counts) != len(t.PathHist.Counts)) {
		return fmt.Errorf("mc: merging tallies with incompatible path histograms")
	}
	if o.Radial != nil && t.Radial != nil &&
		(o.Radial.Min != t.Radial.Min || o.Radial.Max != t.Radial.Max ||
			len(o.Radial.Counts) != len(t.Radial.Counts)) {
		return fmt.Errorf("mc: merging tallies with incompatible radial histograms")
	}
	t.Launched += o.Launched
	t.SpecularWeight += o.SpecularWeight
	t.DiffuseWeight += o.DiffuseWeight
	t.TransmitWeight += o.TransmitWeight
	t.AbsorbedWeight += o.AbsorbedWeight
	t.LateralWeight += o.LateralWeight
	t.RouletteGain += o.RouletteGain
	t.RouletteLoss += o.RouletteLoss
	t.DetectedCount += o.DetectedCount
	t.DetectedWeight += o.DetectedWeight
	t.GateRejected += o.GateRejected
	t.PathStats.Merge(o.PathStats)
	t.OptPathStats.Merge(o.OptPathStats)
	t.DepthStats.Merge(o.DepthStats)
	t.ScatterStats.Merge(o.ScatterStats)
	if o.Moments != nil {
		if t.Moments == nil {
			t.Moments = &Moments{}
		}
		t.Moments.Merge(o.Moments)
	}
	for i := range o.LayerAbsorbed {
		t.LayerAbsorbed[i] += o.LayerAbsorbed[i]
	}
	for i := range o.LayerReached {
		t.LayerReached[i] += o.LayerReached[i]
	}
	for i := range o.LayerEnteredWeight {
		t.LayerEnteredWeight[i] += o.LayerEnteredWeight[i]
	}
	if o.AbsGrid != nil {
		if t.AbsGrid == nil {
			t.AbsGrid = o.AbsGrid.Clone()
		} else if err := t.AbsGrid.Merge(o.AbsGrid); err != nil {
			return err
		}
	}
	if o.PathGrid != nil {
		if t.PathGrid == nil {
			t.PathGrid = o.PathGrid.Clone()
		} else if err := t.PathGrid.Merge(o.PathGrid); err != nil {
			return err
		}
	}
	if o.PathHist != nil {
		if t.PathHist == nil {
			h := *o.PathHist
			h.Counts = append([]float64(nil), o.PathHist.Counts...)
			t.PathHist = &h
		} else if err := t.PathHist.Merge(o.PathHist); err != nil {
			return err
		}
	}
	if o.Radial != nil {
		if t.Radial == nil {
			h := *o.Radial
			h.Counts = append([]float64(nil), o.Radial.Counts...)
			t.Radial = &h
		} else if err := t.Radial.Merge(o.Radial); err != nil {
			return err
		}
	}
	return nil
}

// RadialReflectance converts the exit-radius histogram into R(ρ) in mm⁻²
// per launched photon (weight per annulus area), returning the bin-centre
// radii and values. It returns nils when radial scoring was not enabled.
func (t *Tally) RadialReflectance() (rho, r []float64) {
	if t.Radial == nil {
		return nil, nil
	}
	n := len(t.Radial.Counts)
	rho = make([]float64, n)
	r = make([]float64, n)
	width := (t.Radial.Max - t.Radial.Min) / float64(n)
	for i, w := range t.Radial.Counts {
		c := t.Radial.BinCenter(i)
		rho[i] = c
		// Exact annulus area π(out²−in²) reduces to 2π·center·width.
		area := 2 * math.Pi * c * width
		if area > 0 {
			r[i] = w / (t.N() * area)
		}
	}
	return rho, r
}

// N returns the launched photon count as a float for normalisation.
func (t *Tally) N() float64 { return float64(t.Launched) }

// DiffuseReflectance returns the diffuse reflectance fraction Rd.
func (t *Tally) DiffuseReflectance() float64 { return t.DiffuseWeight / t.N() }

// Transmittance returns the transmitted fraction Tt.
func (t *Tally) Transmittance() float64 { return t.TransmitWeight / t.N() }

// Absorbance returns the absorbed fraction A.
func (t *Tally) Absorbance() float64 { return t.AbsorbedWeight / t.N() }

// SpecularReflectance returns the specular (entry) reflectance fraction.
func (t *Tally) SpecularReflectance() float64 { return t.SpecularWeight / t.N() }

// EnergyBalance returns (Specular+Diffuse+Transmit+Lateral+Absorbed) −
// (Launched + RouletteGain − RouletteLoss), which is zero up to floating
// point rounding for a correct kernel.
func (t *Tally) EnergyBalance() float64 {
	out := t.SpecularWeight + t.DiffuseWeight + t.TransmitWeight + t.LateralWeight + t.AbsorbedWeight
	in := t.N() + t.RouletteGain - t.RouletteLoss
	return out - in
}

// LateralFraction returns the fraction escaping through the sides of a
// laterally bounded geometry — a voxel-grid sizing diagnostic (enlarge the
// grid when it is non-negligible).
func (t *Tally) LateralFraction() float64 { return t.LateralWeight / t.N() }

// DetectedFraction returns the detected weight per launched photon.
func (t *Tally) DetectedFraction() float64 { return t.DetectedWeight / t.N() }

// MeanPathlength returns the mean geometric pathlength (mm) of detected
// photons — the differential pathlength of NIRS.
func (t *Tally) MeanPathlength() float64 { return t.PathStats.Mean() }

// DPF returns the differential pathlength factor: mean detected pathlength
// divided by the source–detector separation.
func (t *Tally) DPF(separationMM float64) float64 {
	if separationMM == 0 {
		return 0
	}
	return t.MeanPathlength() / separationMM
}

// ReachedFraction returns the fraction of launched photons whose deepest
// excursion reached at least the given layer index. Like LayerReached, it
// reads depth into region indices and is meaningful for depth-ordered
// regions (layered models, FromModel voxelizations without inclusions).
func (t *Tally) ReachedFraction(layer int) float64 {
	var n int64
	for i := layer; i < len(t.LayerReached); i++ {
		n += t.LayerReached[i]
	}
	return float64(n) / t.N()
}

// PenetrationFraction returns the survival-weighted probability that a
// launched photon's packet reaches the given layer — the Fig 4 observable
// ("some photons penetrate all the way into the white matter").
func (t *Tally) PenetrationFraction(layer int) float64 {
	if layer < 0 || layer >= len(t.LayerEnteredWeight) {
		return 0
	}
	if layer == 0 {
		return (t.N() - t.SpecularWeight) / t.N()
	}
	return t.LayerEnteredWeight[layer] / t.N()
}
