package mc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/optics"
	"repro/internal/rng"
	"repro/internal/tissue"
)

func TestRadialHistogramMassMatchesDiffuse(t *testing.T) {
	cfg := &Config{
		Model: tissue.HomogeneousSlab("s",
			optics.Properties{MuA: 0.05, MuS: 2, G: 0.8, N: 1.0}, 30),
		Radial: &HistSpec{Min: 0, Max: 1000, Bins: 100},
	}
	tally, err := Run(cfg, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every escaping photon lands in the histogram (range is generous).
	if rel := math.Abs(tally.Radial.Total()-tally.DiffuseWeight) / tally.DiffuseWeight; rel > 1e-9 {
		t.Fatalf("radial mass %g vs diffuse weight %g", tally.Radial.Total(), tally.DiffuseWeight)
	}
}

func TestRadialReflectanceIntegratesToRd(t *testing.T) {
	cfg := &Config{
		Model: tissue.HomogeneousSlab("s",
			optics.Properties{MuA: 0.05, MuS: 2, G: 0.8, N: 1.0}, 30),
		Radial: &HistSpec{Min: 0, Max: 200, Bins: 200},
	}
	tally, err := Run(cfg, 30000, 5)
	if err != nil {
		t.Fatal(err)
	}
	rho, r := tally.RadialReflectance()
	width := 200.0 / 200
	integral := 0.0
	for i := range rho {
		integral += r[i] * 2 * math.Pi * rho[i] * width
	}
	rd := tally.DiffuseReflectance()
	if rel := math.Abs(integral-rd) / rd; rel > 0.02 {
		t.Fatalf("∫R(ρ)dA = %g vs Rd %g (rel %g)", integral, rd, rel)
	}
}

func TestRadialReflectanceMonotoneDecay(t *testing.T) {
	cfg := &Config{
		Model: tissue.HomogeneousSlab("s",
			optics.Properties{MuA: 0.05, MuS: 2, G: 0.8, N: 1.0}, 100),
		Radial: &HistSpec{Min: 0, Max: 20, Bins: 10},
	}
	tally, err := Run(cfg, 100000, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, r := tally.RadialReflectance()
	// Beyond the first couple of bins, R(ρ) decays with distance.
	for i := 3; i < len(r); i++ {
		if r[i] > r[i-1]*1.2 { // 20% slack for MC noise in the tail
			t.Fatalf("R(ρ) not decaying at bin %d: %g → %g", i, r[i-1], r[i])
		}
	}
}

func TestRadialNilWithoutSpec(t *testing.T) {
	tally, err := Run(&Config{Model: tissue.AdultHead()}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rho, r := tally.RadialReflectance(); rho != nil || r != nil {
		t.Fatal("radial profile without scoring should be nil")
	}
}

// Property: for random single-layer models, the kernel conserves photons
// and keeps every fraction inside [0,1].
func TestConservationOverRandomModels(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := optics.Properties{
			MuA: 0.001 + 0.5*r.Float64(),
			MuS: 0.1 + 5*r.Float64(),
			G:   1.8*r.Float64() - 0.9,
			N:   1 + 0.5*r.Float64(),
		}
		thickness := 1 + 30*r.Float64()
		cfg := &Config{Model: tissue.HomogeneousSlab("rand", p, thickness)}
		tally, err := Run(cfg, 2000, seed)
		if err != nil {
			return false
		}
		if math.Abs(tally.EnergyBalance()) > 1e-6 {
			return false
		}
		for _, frac := range []float64{
			tally.DiffuseReflectance(), tally.Transmittance(),
			tally.Absorbance(), tally.SpecularReflectance(),
		} {
			if frac < 0 || frac > 1 || math.IsNaN(frac) {
				return false
			}
		}
		sum := tally.DiffuseReflectance() + tally.Transmittance() +
			tally.Absorbance() + tally.SpecularReflectance()
		return math.Abs(sum-1) < 0.05 // roulette noise at 2000 photons
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: gating can only reduce detection, never increase it, for any
// random window.
func TestGateNeverIncreasesDetection(t *testing.T) {
	model := tissue.HomogeneousSlab("s",
		optics.Properties{MuA: 0.1, MuS: 2, G: 0.5, N: 1.0}, 15)
	open, err := Run(&Config{Model: model}, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		lo := 50 * r.Float64()
		hi := lo + 100*r.Float64()
		cfg := &Config{Model: model}
		cfg.Gate.MinPath, cfg.Gate.MaxPath = lo, hi
		gated, err := Run(cfg, 5000, 9) // same seed as the open run
		if err != nil {
			return false
		}
		return gated.DetectedWeight <= open.DetectedWeight+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
