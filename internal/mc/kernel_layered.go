package mc

import (
	"math"

	"repro/internal/geom"
	"repro/internal/optics"
	"repro/internal/vec"
)

// traceLayered is the devirtualised hot path for layered slab stacks: the
// same hop–drop–spin loop as trace, but with boundary planes, optical
// tables and per-interface Fresnel context precomputed in k.lay, so one
// event costs a table index, one division (the plane distance) and the RNG
// draws — no interface calls, no Hit construction, no vector algebra for
// the axis-aligned reflect/refract. Physics is identical to the generic
// path (TestLayeredFastPathMatchesGeneric gates it statistically).
func (k *kernel) traceLayered(p *subPacket) (deepest int) {
	t := k.tally
	lay := k.lay
	deepest = p.region

	// Hoisted loop invariants: the compiler cannot prove these stable
	// across the tally writes inside the loop.
	maxEvents := k.cfg.MaxEvents
	rouletteThreshold := k.cfg.RouletteThreshold
	rouletteBoost := k.cfg.RouletteBoost
	absGrid := t.AbsGrid

	defer func() { k.putVisits(p.visits); p.visits = nil }()

	for events := 0; events < maxEvents; events++ {
		r := p.region
		op := &k.opt[r]

		// Sample the free-path step; a non-interacting layer propagates
		// straight to its boundary.
		s := math.Inf(1)
		if op.Interacting {
			s = k.rng.Step() * op.InvMuT
		}

		// Distance to the layer plane ahead: a single division.
		uz := p.dir.Z
		db := math.Inf(1)
		var face *layerFace
		if uz > 0 {
			db = (lay.bot[r] - p.pos.Z) / uz
			face = &lay.down[r]
		} else if uz < 0 {
			db = (lay.top[r] - p.pos.Z) / uz
			face = &lay.up[r]
		}

		if s >= db {
			if math.IsInf(db, 1) {
				// Unbounded flight in a non-interacting semi-infinite
				// layer: retire into the absorption ledger.
				t.AbsorbedWeight += p.weight
				t.LayerAbsorbed[r] += p.weight
				return deepest
			}
			// Hop to the boundary and resolve reflection/refraction.
			p.pos.X += p.dir.X * db
			p.pos.Y += p.dir.Y * db
			p.pos.Z += p.dir.Z * db
			p.path += db
			p.optPath += db * op.N
			if p.pos.Z > p.maxZ {
				p.maxZ = p.pos.Z
			}
			if !k.crossLayered(p, face, uz) {
				return deepest
			}
			if p.region > deepest {
				deepest = p.region
			}
			continue
		}

		// Hop.
		p.pos.X += p.dir.X * s
		p.pos.Y += p.dir.Y * s
		p.pos.Z += p.dir.Z * s
		p.path += s
		p.optPath += s * op.N
		if p.pos.Z > p.maxZ {
			p.maxZ = p.pos.Z
		}

		// Drop: deposit the absorbed fraction of the packet weight.
		dw := p.weight * op.AbsFrac
		p.weight -= dw
		t.AbsorbedWeight += dw
		t.LayerAbsorbed[r] += dw
		if absGrid != nil {
			absGrid.Add(p.pos.X, p.pos.Y, p.pos.Z, dw)
		}
		if k.recordPaths {
			p.visits = append(p.visits, p.pos)
		}

		// Spin: sample the Henyey–Greenstein deflection.
		cosPhi, sinPhi := k.rng.AzimuthUnit()
		p.dir = vec.ScatterCS(p.dir, op.sampleHG(k.rng.Float64()), cosPhi, sinPhi)
		p.scat++

		// Survival roulette for low-weight packets.
		if p.weight < rouletteThreshold {
			if k.rng.Float64()*rouletteBoost < 1 {
				t.RouletteGain += p.weight * (rouletteBoost - 1)
				p.weight *= rouletteBoost
			} else {
				t.RouletteLoss += p.weight
				return deepest
			}
		}
	}

	// Event budget exhausted (pathological configuration): retire the
	// packet into the absorption ledger so energy stays conserved.
	t.AbsorbedWeight += p.weight
	t.LayerAbsorbed[p.region] += p.weight
	return deepest
}

// crossLayered resolves a packet sitting exactly on the horizontal face
// described by face, moving with vertical direction component uz. It is the
// axis-aligned specialisation of cross: reflection flips uz, refraction
// scales the transverse components by the precomputed η, and index-matched
// faces (the common case inside a stack of like-indexed tissues) cross with
// no Fresnel evaluation at all. Reports whether the packet is still alive
// inside the geometry.
func (k *kernel) crossLayered(p *subPacket, face *layerFace, uz float64) bool {
	if face.matched {
		// Identical indices: R = 0, direction unchanged.
		if face.exit != geom.ExitNone {
			return k.exitLayered(p, face.exit)
		}
		k.enterRegion(p, face.next)
		return true
	}

	cosI := uz
	if cosI < 0 {
		cosI = -cosI
	}
	if cosI <= face.critCos {
		// Beyond the critical angle: total internal reflection, both modes.
		p.dir.Z = -p.dir.Z
		return true
	}

	refl, cosT := optics.Fresnel(face.n1, face.n2, cosI)
	switch {
	case refl >= 1:
		p.dir.Z = -p.dir.Z
		return true
	case refl > 0 && k.cfg.Boundary == BoundaryDeterministic && p.split < maxSplitDepth:
		// Classical physics: split the packet. The reflected portion
		// continues as a child; the refracted portion proceeds below.
		rw := p.weight * refl
		if rw >= k.cfg.RouletteThreshold {
			child := *p
			child.weight = rw
			child.dir.Z = -child.dir.Z
			child.split = p.split + 1
			if k.recordPaths {
				child.visits = append(k.getVisits(), p.visits...)
			}
			k.stack = append(k.stack, child)
			p.weight -= rw
		} else {
			// Too faint to split: roulette the reflected portion into the
			// continuing packet to stay unbiased without spawning work.
			if k.rng.Float64() < refl {
				p.dir.Z = -p.dir.Z
				return true
			}
		}
	case refl > 0: // probabilistic mode
		if k.rng.Float64() < refl {
			p.dir.Z = -p.dir.Z
			return true
		}
	}

	// Refract across the horizontal face: transverse components scale by η,
	// the vertical component becomes ±cosT preserving the travel sense.
	p.dir.X *= face.eta
	p.dir.Y *= face.eta
	if uz > 0 {
		p.dir.Z = cosT
	} else {
		p.dir.Z = -cosT
	}

	if face.exit != geom.ExitNone {
		return k.exitLayered(p, face.exit)
	}
	k.enterRegion(p, face.next)
	return true
}

// enterRegion moves the packet into region next, scoring the first-entry
// penetration weight.
func (k *kernel) enterRegion(p *subPacket, next int) {
	p.region = next
	if p.markEntered(next) {
		k.tally.LayerEnteredWeight[next] += p.weight
	}
	if next > p.deep {
		p.deep = next
	}
}

// exitLayered scores a packet leaving the stack through the given face and
// reports it dead. Layered stacks are laterally infinite, so only the top
// and bottom exits exist.
func (k *kernel) exitLayered(p *subPacket, exit geom.ExitKind) bool {
	switch exit {
	case geom.ExitTop:
		k.escapeTop(p)
	case geom.ExitBottom:
		k.tally.TransmitWeight += p.weight
	}
	return false
}
