package mc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/stats"
)

// TallyCodecVersion is the wire version byte leading the compact encoding
// of a legacy (moment-free) tally. Decoders reject unknown versions, so
// the format can evolve without silently misreading old bytes.
const TallyCodecVersion = 1

// TallyCodecVersionMoments is the version byte of frames carrying the
// chunk-level moment accumulators of precision-targeted jobs. The encoder
// emits it only when Tally.Moments is non-nil, so every moment-free tally
// — in particular every fixed-count legacy job's chunks — still encodes
// byte-identically to version 1.
const TallyCodecVersionMoments = 2

// TallyCodec serialises tallies. The distributed result plane uses the
// compact codec; checkpoints and the content-addressed cache key stay on
// encoding/gob (GobTallyCodec / plain gob of the enclosing structs), so
// their on-disk formats are untouched by wire-format evolution.
type TallyCodec interface {
	EncodeTally(t *Tally) ([]byte, error)
	DecodeTally(data []byte) (*Tally, error)
}

// CompactTallyCodec is the hand-rolled binary tally codec used on the wire:
// a version byte, varint-coded integers, raw little-endian float64 bits,
// and zero-run sparse coding for the slice payloads (per-region arrays,
// scoring grids, histograms), which are mostly zero for a single chunk.
// Encoding is exact — float64 bit patterns round-trip unchanged — so a
// decoded chunk tally merges to bit-identical results.
type CompactTallyCodec struct{}

// EncodeTally implements TallyCodec.
func (CompactTallyCodec) EncodeTally(t *Tally) ([]byte, error) {
	return AppendTally(nil, t), nil
}

// DecodeTally implements TallyCodec.
func (CompactTallyCodec) DecodeTally(data []byte) (*Tally, error) {
	return DecodeTally(data)
}

// GobTallyCodec adapts encoding/gob to the TallyCodec interface — the
// reference codec the compact format is benchmarked against, and the
// serialisation checkpoints keep using.
type GobTallyCodec struct{}

// EncodeTally implements TallyCodec.
func (GobTallyCodec) EncodeTally(t *Tally) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(t); err != nil {
		return nil, fmt.Errorf("mc: gob tally encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeTally implements TallyCodec.
func (GobTallyCodec) DecodeTally(data []byte) (*Tally, error) {
	t := new(Tally)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(t); err != nil {
		return nil, fmt.Errorf("mc: gob tally decode: %w", err)
	}
	return t, nil
}

// Optional-section presence flags (bit positions in the flags varint).
// tallyHasMoments is only valid in version-2 frames.
const (
	tallyHasAbsGrid = 1 << iota
	tallyHasPathGrid
	tallyHasPathHist
	tallyHasRadial
	tallyHasMoments
)

// Decode-side sanity bounds: a hostile or corrupt frame must not drive a
// multi-gigabyte allocation before the mismatch is noticed.
const (
	maxCodecRegions  = 1 << 20
	maxCodecVoxels   = 1 << 28
	maxCodecHistBins = 1 << 24
)

// AppendTally appends the compact encoding of t to buf and returns the
// extended slice. Passing buf[:0] of a retained buffer makes steady-state
// encoding allocation-free; the worker reuses one buffer per session.
func AppendTally(buf []byte, t *Tally) []byte {
	version := byte(TallyCodecVersion)
	if t.Moments != nil {
		version = TallyCodecVersionMoments
	}
	buf = append(buf, version)
	var flags uint64
	if t.AbsGrid != nil {
		flags |= tallyHasAbsGrid
	}
	if t.PathGrid != nil {
		flags |= tallyHasPathGrid
	}
	if t.PathHist != nil {
		flags |= tallyHasPathHist
	}
	if t.Radial != nil {
		flags |= tallyHasRadial
	}
	if t.Moments != nil {
		flags |= tallyHasMoments
	}
	buf = binary.AppendUvarint(buf, flags)
	buf = binary.AppendVarint(buf, t.Launched)
	buf = appendF64(buf, t.SpecularWeight, t.DiffuseWeight, t.TransmitWeight,
		t.AbsorbedWeight, t.LateralWeight, t.RouletteGain, t.RouletteLoss)
	buf = binary.AppendVarint(buf, t.DetectedCount)
	buf = appendF64(buf, t.DetectedWeight, t.GateRejected)
	for _, r := range []*stats.Running{&t.PathStats, &t.OptPathStats, &t.DepthStats, &t.ScatterStats} {
		buf = binary.AppendVarint(buf, r.N)
		buf = appendF64(buf, r.SumW, r.SumWX, r.SumWX2, r.MinV, r.MaxV)
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.LayerAbsorbed)))
	buf = appendSparseF64(buf, t.LayerAbsorbed)
	buf = appendSparseI64(buf, t.LayerReached)
	buf = appendSparseF64(buf, t.LayerEnteredWeight)
	if t.AbsGrid != nil {
		buf = appendGrid(buf, t.AbsGrid)
	}
	if t.PathGrid != nil {
		buf = appendGrid(buf, t.PathGrid)
	}
	if t.PathHist != nil {
		buf = appendHist(buf, t.PathHist)
	}
	if t.Radial != nil {
		buf = appendHist(buf, t.Radial)
	}
	if t.Moments != nil {
		for _, r := range [...]*stats.Running{
			&t.Moments.Diffuse, &t.Moments.Transmit, &t.Moments.Absorbed, &t.Moments.Detected} {
			buf = binary.AppendVarint(buf, r.N)
			buf = appendF64(buf, r.SumW, r.SumWX, r.SumWX2, r.MinV, r.MaxV)
		}
	}
	return buf
}

// DecodeTally decodes one compact tally.
func DecodeTally(data []byte) (*Tally, error) {
	t := new(Tally)
	if err := DecodeTallyInto(t, data); err != nil {
		return nil, err
	}
	return t, nil
}

// DecodeTallyInto decodes into t, reusing its slices and optional sections
// when the shapes match — a long-lived reducer connection decodes thousands
// of chunk results into one scratch tally with near-zero steady-state
// allocation.
func DecodeTallyInto(t *Tally, data []byte) error {
	d := tallyDecoder{data: data}
	version, err := d.byte()
	if err != nil {
		return err
	}
	if version != TallyCodecVersion && version != TallyCodecVersionMoments {
		return fmt.Errorf("mc: tally codec: unsupported version %d (want %d or %d)",
			version, TallyCodecVersion, TallyCodecVersionMoments)
	}
	flags, err := d.uvarint()
	if err != nil {
		return err
	}
	if version < TallyCodecVersionMoments && flags&tallyHasMoments != 0 {
		return fmt.Errorf("mc: tally codec: version %d frame carries moments", version)
	}
	if t.Launched, err = d.varint(); err != nil {
		return err
	}
	if err := d.f64(&t.SpecularWeight, &t.DiffuseWeight, &t.TransmitWeight,
		&t.AbsorbedWeight, &t.LateralWeight, &t.RouletteGain, &t.RouletteLoss); err != nil {
		return err
	}
	if t.DetectedCount, err = d.varint(); err != nil {
		return err
	}
	if err := d.f64(&t.DetectedWeight, &t.GateRejected); err != nil {
		return err
	}
	for _, r := range []*stats.Running{&t.PathStats, &t.OptPathStats, &t.DepthStats, &t.ScatterStats} {
		if r.N, err = d.varint(); err != nil {
			return err
		}
		if err := d.f64(&r.SumW, &r.SumWX, &r.SumWX2, &r.MinV, &r.MaxV); err != nil {
			return err
		}
	}
	regions, err := d.length(maxCodecRegions, "regions")
	if err != nil {
		return err
	}
	t.LayerAbsorbed = resizeF64(t.LayerAbsorbed, regions)
	if err := d.sparseF64(t.LayerAbsorbed); err != nil {
		return err
	}
	t.LayerReached = resizeI64(t.LayerReached, regions)
	if err := d.sparseI64(t.LayerReached); err != nil {
		return err
	}
	t.LayerEnteredWeight = resizeF64(t.LayerEnteredWeight, regions)
	if err := d.sparseF64(t.LayerEnteredWeight); err != nil {
		return err
	}

	if flags&tallyHasAbsGrid != 0 {
		if t.AbsGrid, err = d.grid(t.AbsGrid); err != nil {
			return err
		}
	} else {
		t.AbsGrid = nil
	}
	if flags&tallyHasPathGrid != 0 {
		if t.PathGrid, err = d.grid(t.PathGrid); err != nil {
			return err
		}
	} else {
		t.PathGrid = nil
	}
	if flags&tallyHasPathHist != 0 {
		if t.PathHist, err = d.hist(t.PathHist); err != nil {
			return err
		}
	} else {
		t.PathHist = nil
	}
	if flags&tallyHasRadial != 0 {
		if t.Radial, err = d.hist(t.Radial); err != nil {
			return err
		}
	} else {
		t.Radial = nil
	}
	if flags&tallyHasMoments != 0 {
		if t.Moments == nil {
			t.Moments = &Moments{}
		}
		for _, r := range [...]*stats.Running{
			&t.Moments.Diffuse, &t.Moments.Transmit, &t.Moments.Absorbed, &t.Moments.Detected} {
			if r.N, err = d.varint(); err != nil {
				return err
			}
			if err := d.f64(&r.SumW, &r.SumWX, &r.SumWX2, &r.MinV, &r.MaxV); err != nil {
				return err
			}
		}
	} else {
		t.Moments = nil
	}
	if d.off != len(d.data) {
		return fmt.Errorf("mc: tally codec: %d trailing bytes", len(d.data)-d.off)
	}
	return nil
}

// --- encode helpers ------------------------------------------------------

func appendF64(buf []byte, vs ...float64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// appendSparseF64 writes a slice of known length as alternating
// (zero-run, nonzero-run + values) pairs. Zero means the exact bit pattern
// of +0.0 — negative zero and denormals round-trip as values — so decoding
// reproduces the input bit-for-bit.
func appendSparseF64(buf []byte, vs []float64) []byte {
	for i := 0; i < len(vs); {
		z := i
		for i < len(vs) && math.Float64bits(vs[i]) == 0 {
			i++
		}
		buf = binary.AppendUvarint(buf, uint64(i-z))
		if i == len(vs) {
			break
		}
		n := i
		for i < len(vs) && math.Float64bits(vs[i]) != 0 {
			i++
		}
		buf = binary.AppendUvarint(buf, uint64(i-n))
		buf = appendF64(buf, vs[n:i]...)
	}
	return buf
}

func appendSparseI64(buf []byte, vs []int64) []byte {
	for i := 0; i < len(vs); {
		z := i
		for i < len(vs) && vs[i] == 0 {
			i++
		}
		buf = binary.AppendUvarint(buf, uint64(i-z))
		if i == len(vs) {
			break
		}
		n := i
		for i < len(vs) && vs[i] != 0 {
			i++
		}
		buf = binary.AppendUvarint(buf, uint64(i-n))
		for _, v := range vs[n:i] {
			buf = binary.AppendVarint(buf, v)
		}
	}
	return buf
}

func appendGrid(buf []byte, g *grid.Grid3) []byte {
	buf = binary.AppendUvarint(buf, uint64(g.Nx))
	buf = binary.AppendUvarint(buf, uint64(g.Ny))
	buf = binary.AppendUvarint(buf, uint64(g.Nz))
	buf = appendF64(buf, g.Dx, g.Dy, g.Dz, g.X0, g.Y0)
	return appendSparseF64(buf, g.Data)
}

func appendHist(buf []byte, h *stats.Histogram) []byte {
	buf = appendF64(buf, h.Min, h.Max, h.Under, h.Over)
	buf = binary.AppendUvarint(buf, uint64(len(h.Counts)))
	return appendSparseF64(buf, h.Counts)
}

// --- decode helpers ------------------------------------------------------

type tallyDecoder struct {
	data []byte
	off  int
}

func (d *tallyDecoder) byte() (byte, error) {
	if d.off >= len(d.data) {
		return 0, fmt.Errorf("mc: tally codec: truncated frame")
	}
	b := d.data[d.off]
	d.off++
	return b, nil
}

func (d *tallyDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("mc: tally codec: bad uvarint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *tallyDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("mc: tally codec: bad varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

// length reads a uvarint bounded by max, guarding allocations.
func (d *tallyDecoder) length(max uint64, what string) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, fmt.Errorf("mc: tally codec: %s length %d exceeds bound %d", what, v, max)
	}
	return int(v), nil
}

func (d *tallyDecoder) f64(dst ...*float64) error {
	if d.off+8*len(dst) > len(d.data) {
		return fmt.Errorf("mc: tally codec: truncated float block at offset %d", d.off)
	}
	for _, p := range dst {
		*p = math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
		d.off += 8
	}
	return nil
}

func (d *tallyDecoder) sparseF64(dst []float64) error {
	rem := len(dst)
	i := 0
	for rem > 0 {
		z, err := d.uvarint()
		if err != nil {
			return err
		}
		if z > uint64(rem) {
			return fmt.Errorf("mc: tally codec: zero run %d exceeds remaining %d", z, rem)
		}
		for j := 0; j < int(z); j++ {
			dst[i] = 0
			i++
		}
		rem -= int(z)
		if rem == 0 {
			break
		}
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n == 0 || n > uint64(rem) {
			return fmt.Errorf("mc: tally codec: value run %d outside (0,%d]", n, rem)
		}
		if d.off+8*int(n) > len(d.data) {
			return fmt.Errorf("mc: tally codec: truncated value run at offset %d", d.off)
		}
		for j := 0; j < int(n); j++ {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
			d.off += 8
			i++
		}
		rem -= int(n)
	}
	return nil
}

func (d *tallyDecoder) sparseI64(dst []int64) error {
	rem := len(dst)
	i := 0
	for rem > 0 {
		z, err := d.uvarint()
		if err != nil {
			return err
		}
		if z > uint64(rem) {
			return fmt.Errorf("mc: tally codec: zero run %d exceeds remaining %d", z, rem)
		}
		for j := 0; j < int(z); j++ {
			dst[i] = 0
			i++
		}
		rem -= int(z)
		if rem == 0 {
			break
		}
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n == 0 || n > uint64(rem) {
			return fmt.Errorf("mc: tally codec: value run %d outside (0,%d]", n, rem)
		}
		for j := 0; j < int(n); j++ {
			v, err := d.varint()
			if err != nil {
				return err
			}
			dst[i] = v
			i++
		}
		rem -= int(n)
	}
	return nil
}

func (d *tallyDecoder) grid(reuse *grid.Grid3) (*grid.Grid3, error) {
	nx, err := d.length(maxCodecVoxels, "grid nx")
	if err != nil {
		return nil, err
	}
	ny, err := d.length(maxCodecVoxels, "grid ny")
	if err != nil {
		return nil, err
	}
	nz, err := d.length(maxCodecVoxels, "grid nz")
	if err != nil {
		return nil, err
	}
	if nx <= 0 || ny <= 0 || nz <= 0 ||
		uint64(nx)*uint64(ny)*uint64(nz) > maxCodecVoxels {
		return nil, fmt.Errorf("mc: tally codec: grid %dx%dx%d out of bounds", nx, ny, nz)
	}
	g := reuse
	if g == nil || g.Nx != nx || g.Ny != ny || g.Nz != nz {
		g = &grid.Grid3{Nx: nx, Ny: ny, Nz: nz, Data: make([]float64, nx*ny*nz)}
	}
	g.Nx, g.Ny, g.Nz = nx, ny, nz
	if err := d.f64(&g.Dx, &g.Dy, &g.Dz, &g.X0, &g.Y0); err != nil {
		return nil, err
	}
	if err := d.sparseF64(g.Data); err != nil {
		return nil, err
	}
	return g, nil
}

func (d *tallyDecoder) hist(reuse *stats.Histogram) (*stats.Histogram, error) {
	h := reuse
	if h == nil {
		h = &stats.Histogram{}
	}
	if err := d.f64(&h.Min, &h.Max, &h.Under, &h.Over); err != nil {
		return nil, err
	}
	bins, err := d.length(maxCodecHistBins, "histogram bins")
	if err != nil {
		return nil, err
	}
	h.Counts = resizeF64(h.Counts, bins)
	if err := d.sparseF64(h.Counts); err != nil {
		return nil, err
	}
	return h, nil
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func resizeI64(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}
