// Package mc implements the Monte Carlo photon-transport kernel of the
// paper (Fig 1 pseudocode): photon packets hop through a layered tissue
// model, drop weight to absorption, spin into new directions via the
// Henyey–Greenstein phase function, refract or internally reflect at layer
// boundaries, and are captured by a surface detector. It also provides the
// local parallel runner that fans photons across goroutines with
// reproducible per-worker RNG streams.
package mc

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/source"
	"repro/internal/tissue"
)

// Geometry is the medium abstraction the kernel traces through; see
// repro/internal/geom. The layered slab model and the heterogeneous voxel
// grid (repro/internal/voxel) both implement it.
type Geometry = geom.Geometry

// BoundaryMode selects how refraction/internal reflection is handled at
// layer boundaries — the paper supports "classical physics or probabilistic
// methods".
type BoundaryMode int

const (
	// BoundaryProbabilistic samples the Fresnel reflectance: the whole
	// packet reflects with probability R, otherwise refracts (MCML default).
	BoundaryProbabilistic BoundaryMode = iota
	// BoundaryDeterministic splits the packet classically: weight·(1−R)
	// refracts and weight·R continues as a reflected sub-packet.
	BoundaryDeterministic
)

// String implements fmt.Stringer.
func (m BoundaryMode) String() string {
	switch m {
	case BoundaryProbabilistic:
		return "probabilistic"
	case BoundaryDeterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("BoundaryMode(%d)", int(m))
	}
}

// GridSpec describes a cubic scoring grid of N³ voxels spanning Edge mm —
// the paper's "user defined granularity of results" (e.g. N = 50).
type GridSpec struct {
	N    int
	Edge float64 // physical edge length in mm
}

// HistSpec describes a uniform histogram over [Min, Max) with Bins bins.
type HistSpec struct {
	Min, Max float64
	Bins     int
}

// Default kernel parameters (the standard MCML choices).
const (
	DefaultRouletteThreshold = 1e-4
	DefaultRouletteBoost     = 10
	DefaultMaxEvents         = 1_000_000
	// maxSplitDepth bounds the sub-packet stack in deterministic boundary
	// mode; deeper splits fall back to probabilistic sampling.
	maxSplitDepth = 64
)

// Config fully describes one simulation. The zero value is not usable; set
// at least Model (or Geometry) and Source, then call Normalize.
type Config struct {
	// Model is the layered slab description; Normalize wraps it in the
	// layered Geometry fast path when Geometry is nil.
	Model *tissue.Model
	// Geometry, when set, overrides Model as the traced medium — any
	// geom.Geometry implementation, e.g. a heterogeneous *voxel.Grid.
	Geometry Geometry
	Source   source.Source

	// Detector captures photons exiting the top surface; nil means the
	// entire surface. Gate optionally restricts capture by pathlength.
	Detector detector.Detector
	Gate     detector.Gate

	Boundary BoundaryMode

	// RouletteThreshold is the packet weight below which Russian roulette
	// is played; survivors are boosted by RouletteBoost.
	RouletteThreshold float64
	RouletteBoost     float64

	// MaxEvents bounds interaction events per photon as a safety net.
	MaxEvents int

	// AbsGrid, if non-nil, scores absorbed weight per voxel.
	AbsGrid *GridSpec
	// PathGrid, if non-nil, scores the interaction sites of *detected*
	// photons per voxel — the spatial sensitivity profile whose thresholded
	// rendering is the Fig 3 banana.
	PathGrid *GridSpec
	// PathHist, if non-nil, histograms detected-photon pathlengths (mm).
	PathHist *HistSpec
	// Radial, if non-nil, histograms the exit radius of every photon
	// escaping the top surface — the diffuse reflectance profile R(ρ)
	// used to compare against diffusion theory.
	Radial *HistSpec

	// TrackMoments makes every runner record chunk-level second moments
	// of the headline observables (Tally.Moments) — one weighted sample
	// per stream or fan sub-stream — enabling on-line standard-error
	// estimates and run-until-precision termination. Off by default: the
	// legacy path's tallies, and therefore its golden fixtures, cache
	// keys and wire bytes, are unchanged.
	TrackMoments bool

	// Hot-path tables, built by Normalize and read-only afterwards: the
	// per-region optical table every kernel indexes instead of calling
	// Geometry.Props per event, and the devirtualised layered fast path
	// (nil for voxel/custom geometries, which trace through the Geometry
	// interface).
	opt []regionOpt
	lay *layeredGeom
}

// Normalize fills defaults and validates the configuration.
func (c *Config) Normalize() error {
	if c.Geometry == nil {
		if c.Model == nil {
			return fmt.Errorf("mc: config has no tissue model or geometry")
		}
		c.Geometry = geom.Layered{M: c.Model}
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	c.opt = buildRegionTable(c.Geometry)
	c.lay = nil
	if l, ok := c.Geometry.(geom.Layered); ok {
		c.lay = buildLayeredGeom(l)
	}
	if c.Source == nil {
		c.Source = source.Pencil{}
	}
	if c.Detector == nil {
		c.Detector = detector.All{}
	}
	if err := c.Gate.Validate(); err != nil {
		return err
	}
	if c.RouletteThreshold == 0 {
		c.RouletteThreshold = DefaultRouletteThreshold
	}
	if c.RouletteThreshold < 0 || c.RouletteThreshold >= 1 {
		return fmt.Errorf("mc: roulette threshold %g outside (0,1)", c.RouletteThreshold)
	}
	if c.RouletteBoost == 0 {
		c.RouletteBoost = DefaultRouletteBoost
	}
	if c.RouletteBoost <= 1 {
		return fmt.Errorf("mc: roulette boost %g must exceed 1", c.RouletteBoost)
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = DefaultMaxEvents
	}
	if c.MaxEvents < 1 {
		return fmt.Errorf("mc: max events %d must be positive", c.MaxEvents)
	}
	for _, gs := range []*GridSpec{c.AbsGrid, c.PathGrid} {
		if gs != nil && (gs.N <= 0 || gs.Edge <= 0) {
			return fmt.Errorf("mc: bad grid spec %+v", *gs)
		}
	}
	for _, h := range []*HistSpec{c.PathHist, c.Radial} {
		if h != nil && (h.Bins <= 0 || h.Max <= h.Min) {
			return fmt.Errorf("mc: bad histogram spec %+v", *h)
		}
	}
	return nil
}
