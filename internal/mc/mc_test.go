package mc

import (
	"math"
	"testing"

	"repro/internal/detector"
	"repro/internal/optics"
	"repro/internal/source"
	"repro/internal/tissue"
)

// matched returns an index-matched purely absorbing slab: photons travel in
// straight lines, so every observable has a closed form.
func matchedAbsorber(mua, thickness float64) *tissue.Model {
	return tissue.HomogeneousSlab("absorber",
		optics.Properties{MuA: mua, MuS: 0, G: 0, N: 1.0}, thickness)
}

func TestBeerLambert(t *testing.T) {
	const mua, d = 0.2, 8.0
	tally, err := Run(&Config{Model: matchedAbsorber(mua, d)}, 200000, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-mua * d)
	got := tally.Transmittance()
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("transmittance %g, want %g (Beer–Lambert)", got, want)
	}
	if rd := tally.DiffuseReflectance(); rd != 0 {
		t.Fatalf("straight-line photons cannot reflect diffusely, Rd = %g", rd)
	}
	if sp := tally.SpecularReflectance(); sp != 0 {
		t.Fatalf("matched indices give zero specular, got %g", sp)
	}
}

func TestSpecularEntryReflectance(t *testing.T) {
	// Air (1.0) onto tissue (1.4): Rsp = ((1-1.4)/(1+1.4))².
	m := tissue.HomogeneousSlab("s", optics.Properties{MuA: 1, MuS: 0, G: 0, N: 1.4}, 10)
	tally, err := Run(&Config{Model: m}, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := optics.Specular(1, 1.4)
	if got := tally.SpecularReflectance(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("specular %g, want %g", got, want)
	}
}

func TestEnergyBalanceExact(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config 2×10⁴-photon sweep; skipped in -short")
	}
	cases := []struct {
		name string
		cfg  *Config
		n    int64
	}{
		{"absorber", &Config{Model: matchedAbsorber(0.5, 5)}, 20000},
		{"scattering slab", &Config{Model: tissue.HomogeneousSlab("s",
			optics.Properties{MuA: 0.1, MuS: 2, G: 0.8, N: 1.4}, 10)}, 20000},
		{"head probabilistic", &Config{Model: tissue.AdultHead()}, 5000},
		{"head deterministic", &Config{Model: tissue.AdultHead(),
			Boundary: BoundaryDeterministic}, 5000},
		{"gaussian source", &Config{Model: tissue.AdultHead(),
			Source: source.GaussianBeam{Sigma: 2}}, 5000},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tally, err := Run(c.cfg, c.n, 42)
			if err != nil {
				t.Fatal(err)
			}
			if bal := tally.EnergyBalance(); math.Abs(bal) > 1e-6*float64(c.n) {
				t.Fatalf("energy balance violated: %g for %d photons", bal, c.n)
			}
			sum := tally.SpecularReflectance() + tally.DiffuseReflectance() +
				tally.Transmittance() + tally.Absorbance()
			// Roulette noise keeps this near, not exactly at, 1.
			if math.Abs(sum-1) > 0.02 {
				t.Fatalf("R+T+A = %g, want ≈1", sum)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	cfg := func() *Config {
		return &Config{
			Model:    tissue.AdultHead(),
			Detector: detector.Disk{CenterX: 10, Radius: 3},
			AbsGrid:  &GridSpec{N: 10, Edge: 30},
		}
	}
	a, err := Run(cfg(), 3000, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg(), 3000, 77)
	if err != nil {
		t.Fatal(err)
	}
	if a.AbsorbedWeight != b.AbsorbedWeight || a.DiffuseWeight != b.DiffuseWeight ||
		a.DetectedCount != b.DetectedCount || a.DetectedWeight != b.DetectedWeight {
		t.Fatal("same seed produced different tallies")
	}
	for i := range a.AbsGrid.Data {
		if a.AbsGrid.Data[i] != b.AbsGrid.Data[i] {
			t.Fatal("same seed produced different grids")
		}
	}
	c, err := Run(cfg(), 3000, 78)
	if err != nil {
		t.Fatal(err)
	}
	if c.AbsorbedWeight == a.AbsorbedWeight {
		t.Fatal("different seeds produced identical absorbed weight")
	}
}

// The reproducibility contract of the distributed system: the merge of
// per-stream chunks equals the parallel run with the same seed and stream
// count, in any merge order.
func TestStreamMergeMatchesParallel(t *testing.T) {
	mk := func() *Config {
		return &Config{
			Model:    tissue.AdultHead(),
			Detector: detector.Disk{CenterX: 10, Radius: 3},
		}
	}
	const (
		seed     = 5
		streams  = 4
		perChunk = 1000
	)
	par, err := RunParallel(mk(), streams*perChunk, seed, streams)
	if err != nil {
		t.Fatal(err)
	}

	// Merge chunks in reverse order; the result must be bit-compatible on
	// counts and close on floats (addition order differs).
	merged := NewTally(mk())
	_ = merged
	cfg := mk()
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	total := NewTally(cfg)
	for s := streams - 1; s >= 0; s-- {
		chunk, err := RunStream(mk(), perChunk, seed, s, streams)
		if err != nil {
			t.Fatal(err)
		}
		if err := total.Merge(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if total.Launched != par.Launched || total.DetectedCount != par.DetectedCount {
		t.Fatalf("counts differ: launched %d vs %d, detected %d vs %d",
			total.Launched, par.Launched, total.DetectedCount, par.DetectedCount)
	}
	if math.Abs(total.AbsorbedWeight-par.AbsorbedWeight) > 1e-9 {
		t.Fatalf("absorbed weight differs: %g vs %g",
			total.AbsorbedWeight, par.AbsorbedWeight)
	}
	if math.Abs(total.DetectedWeight-par.DetectedWeight) > 1e-9 {
		t.Fatalf("detected weight differs: %g vs %g",
			total.DetectedWeight, par.DetectedWeight)
	}
}

func TestRunStreamValidation(t *testing.T) {
	cfg := &Config{Model: matchedAbsorber(1, 1)}
	if _, err := RunStream(cfg, 10, 1, 5, 3); err == nil {
		t.Fatal("out-of-range stream accepted")
	}
	if _, err := RunStream(cfg, 10, 1, -1, 3); err == nil {
		t.Fatal("negative stream accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(&Config{}, 10, 1); err == nil {
		t.Fatal("config without model accepted")
	}
	bad := []*Config{
		{Model: matchedAbsorber(1, 1), RouletteThreshold: 2},
		{Model: matchedAbsorber(1, 1), RouletteBoost: 0.5},
		{Model: matchedAbsorber(1, 1), MaxEvents: -1},
		{Model: matchedAbsorber(1, 1), AbsGrid: &GridSpec{N: 0, Edge: 1}},
		{Model: matchedAbsorber(1, 1), PathHist: &HistSpec{Min: 5, Max: 1, Bins: 10}},
		{Model: matchedAbsorber(1, 1), Gate: detector.Gate{MinPath: 9, MaxPath: 1}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, 10, 1); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// Gating partitions detection: with the same seed, gated DetectedWeight +
// GateRejected equals the open-gate DetectedWeight exactly.
func TestGatePartition(t *testing.T) {
	mk := func(gate detector.Gate) *Config {
		return &Config{
			Model:    tissue.HomogeneousSlab("s", optics.Properties{MuA: 0.05, MuS: 2, G: 0.8, N: 1.0}, 20),
			Detector: detector.Annulus{RMin: 1, RMax: 5},
			Gate:     gate,
		}
	}
	const n, seed = 20000, 9
	open, err := Run(mk(detector.Gate{}), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := Run(mk(detector.Gate{MinPath: 0, MaxPath: 15}), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if open.DetectedCount == 0 {
		t.Fatal("no detections; test is vacuous")
	}
	sum := gated.DetectedWeight + gated.GateRejected
	if math.Abs(sum-open.DetectedWeight) > 1e-9 {
		t.Fatalf("gate partition broken: %g + %g != %g",
			gated.DetectedWeight, gated.GateRejected, open.DetectedWeight)
	}
	if gated.DetectedWeight >= open.DetectedWeight {
		t.Fatal("a finite gate should reject some photons here")
	}
	// Every accepted pathlength is inside the window.
	if gated.PathStats.MaxV > 15 || gated.PathStats.MinV < 0 {
		t.Fatalf("gated pathlengths outside window: [%g, %g]",
			gated.PathStats.MinV, gated.PathStats.MaxV)
	}
}

func TestDetectorSubsetOfDiffuse(t *testing.T) {
	cfg := &Config{
		Model:    tissue.AdultHead(),
		Detector: detector.Disk{CenterX: 15, Radius: 2},
	}
	tally, err := Run(cfg, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if tally.DetectedWeight > tally.DiffuseWeight {
		t.Fatalf("detected %g exceeds diffuse %g", tally.DetectedWeight, tally.DiffuseWeight)
	}

	all := &Config{Model: tissue.AdultHead()}
	ta, err := Run(all, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ta.DetectedWeight-ta.DiffuseWeight) > 1e-12 {
		t.Fatalf("surface detector must capture all diffuse weight: %g vs %g",
			ta.DetectedWeight, ta.DiffuseWeight)
	}
}

// Boundary modes are different estimators of the same physics: their
// reflectance and penetration observables must agree statistically.
func TestBoundaryModesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical mode comparison needs 1.5×10⁴ photons per mode; skipped in -short")
	}
	const n = 15000
	run := func(mode BoundaryMode, seed uint64) *Tally {
		tally, err := Run(&Config{Model: tissue.AdultHead(), Boundary: mode}, n, seed)
		if err != nil {
			t.Fatal(err)
		}
		return tally
	}
	p := run(BoundaryProbabilistic, 21)
	d := run(BoundaryDeterministic, 22)
	relDiff := func(a, b float64) float64 { return math.Abs(a-b) / ((a + b) / 2) }
	if r := relDiff(p.DiffuseReflectance(), d.DiffuseReflectance()); r > 0.05 {
		t.Fatalf("Rd disagrees between modes by %.1f%%: %g vs %g",
			100*r, p.DiffuseReflectance(), d.DiffuseReflectance())
	}
	if r := relDiff(p.PenetrationFraction(2), d.PenetrationFraction(2)); r > 0.15 {
		t.Fatalf("CSF penetration disagrees by %.1f%%: %g vs %g",
			100*r, p.PenetrationFraction(2), d.PenetrationFraction(2))
	}
}

// Russian roulette is unbiased: changing the threshold must not move the
// reflectance beyond Monte Carlo noise.
func TestRouletteUnbiased(t *testing.T) {
	const n = 30000
	run := func(th float64) float64 {
		tally, err := Run(&Config{
			Model: tissue.HomogeneousSlab("s",
				optics.Properties{MuA: 0.1, MuS: 5, G: 0.9, N: 1.4}, 10),
			RouletteThreshold: th,
		}, n, 33)
		if err != nil {
			t.Fatal(err)
		}
		return tally.DiffuseReflectance()
	}
	a, b := run(1e-4), run(1e-2)
	if math.Abs(a-b)/a > 0.05 {
		t.Fatalf("roulette bias: Rd %g (1e-4) vs %g (1e-2)", a, b)
	}
}

func TestMaxEventsSafetyNet(t *testing.T) {
	cfg := &Config{
		Model: tissue.HomogeneousSlab("s",
			optics.Properties{MuA: 1e-9, MuS: 50, G: 0, N: 1.4}, 100),
		MaxEvents: 50,
	}
	tally, err := Run(cfg, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bal := tally.EnergyBalance(); math.Abs(bal) > 1e-6 {
		t.Fatalf("energy escaped the books under MaxEvents: %g", bal)
	}
}

func TestOpticalPathScalesWithIndex(t *testing.T) {
	cfg := &Config{
		Model: tissue.HomogeneousSlab("s",
			optics.Properties{MuA: 0.05, MuS: 2, G: 0.8, N: 1.4}, 20),
	}
	tally, err := Run(cfg, 10000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if tally.DetectedCount == 0 {
		t.Fatal("no detections")
	}
	ratio := tally.OptPathStats.Mean() / tally.PathStats.Mean()
	if math.Abs(ratio-1.4) > 1e-9 {
		t.Fatalf("optical/geometric path ratio %g, want exactly 1.4", ratio)
	}
}

func TestPenetrationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("needs 2×10⁴ photons through the full head; skipped in -short")
	}
	tally, err := Run(&Config{Model: tissue.AdultHead()}, 20000, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Deeper layers are monotonically harder to reach.
	prev := math.Inf(1)
	for layer := 1; layer < 5; layer++ {
		f := tally.PenetrationFraction(layer)
		if f > prev {
			t.Fatalf("penetration not monotone at layer %d: %g > %g", layer, f, prev)
		}
		prev = f
	}
	// Fig 4's qualitative claims.
	if csf := tally.PenetrationFraction(2); csf > 0.5 {
		t.Fatalf("most photons should not reach the CSF, got %g", csf)
	}
	if white := tally.PenetrationFraction(4); white <= 0 {
		t.Fatal("some photons must penetrate to white matter")
	}
}

func TestDPFExceedsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("needs 3×10⁴ photons for a stable DPF; skipped in -short")
	}
	cfg := &Config{
		Model:    tissue.AdultHead(),
		Detector: detector.Annulus{RMin: 8, RMax: 12},
	}
	tally, err := Run(cfg, 30000, 19)
	if err != nil {
		t.Fatal(err)
	}
	if tally.DetectedCount < 20 {
		t.Fatalf("too few detections (%d) for a DPF estimate", tally.DetectedCount)
	}
	// Scattering makes photons travel much farther than the optode gap.
	if dpf := tally.DPF(10); dpf < 2 {
		t.Fatalf("DPF = %g, expected well above 1 in scattering tissue", dpf)
	}
}

func TestPathGridScoresOnlyDetected(t *testing.T) {
	mk := func(det detector.Detector) *Config {
		return &Config{
			Model: tissue.HomogeneousSlab("s",
				optics.Properties{MuA: 0.05, MuS: 2, G: 0.8, N: 1.0}, 20),
			Detector: det,
			PathGrid: &GridSpec{N: 20, Edge: 20},
		}
	}
	// A detector no photon can hit leaves the path grid empty.
	far, err := Run(mk(detector.Disk{CenterX: 1e6, Radius: 0.1}), 2000, 23)
	if err != nil {
		t.Fatal(err)
	}
	if far.PathGrid.Total() != 0 {
		t.Fatalf("path grid scored %g without detections", far.PathGrid.Total())
	}
	near, err := Run(mk(detector.Annulus{RMin: 0, RMax: 10}), 2000, 23)
	if err != nil {
		t.Fatal(err)
	}
	if near.DetectedCount == 0 || near.PathGrid.Total() == 0 {
		t.Fatal("expected detections to populate the path grid")
	}
}

func TestAbsGridMassMatchesAbsorbedWeight(t *testing.T) {
	// With a grid big enough to contain essentially all absorption, the
	// voxel mass must match the absorbed-weight ledger.
	cfg := &Config{
		Model: tissue.HomogeneousSlab("s",
			optics.Properties{MuA: 0.5, MuS: 2, G: 0.5, N: 1.0}, 10),
		AbsGrid: &GridSpec{N: 40, Edge: 200},
	}
	tally, err := Run(cfg, 5000, 29)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(tally.AbsGrid.Total()-tally.AbsorbedWeight) / tally.AbsorbedWeight; rel > 0.02 {
		t.Fatalf("grid mass %g vs absorbed %g (rel %g)",
			tally.AbsGrid.Total(), tally.AbsorbedWeight, rel)
	}
}

func TestLayerAbsorbedSumsToTotal(t *testing.T) {
	tally, err := Run(&Config{Model: tissue.AdultHead()}, 5000, 31)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, a := range tally.LayerAbsorbed {
		sum += a
	}
	// The two ledgers accumulate in different orders; agreement is up to
	// floating-point rounding only.
	if math.Abs(sum-tally.AbsorbedWeight) > 1e-9*tally.AbsorbedWeight {
		t.Fatalf("layer absorption sum %g != total %g", sum, tally.AbsorbedWeight)
	}
}

func TestTallyMergeRejectsMismatch(t *testing.T) {
	a, err := Run(&Config{Model: tissue.AdultHead()}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(&Config{Model: tissue.HomogeneousWhiteMatter()}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("merged tallies with different layer counts")
	}
}

func TestSourceFootprintWidensAbsorption(t *testing.T) {
	run := func(src source.Source) float64 {
		cfg := &Config{
			Model: tissue.HomogeneousSlab("s",
				optics.Properties{MuA: 0.5, MuS: 1, G: 0, N: 1.0}, 5),
			Source:  src,
			AbsGrid: &GridSpec{N: 30, Edge: 30},
		}
		tally, err := Run(cfg, 10000, 37)
		if err != nil {
			t.Fatal(err)
		}
		// Lateral second moment of the absorption distribution.
		g := tally.AbsGrid
		sumW, sumR2 := 0.0, 0.0
		for i := 0; i < g.Nx; i++ {
			for j := 0; j < g.Ny; j++ {
				for kk := 0; kk < g.Nz; kk++ {
					w := g.At(i, j, kk)
					if w == 0 {
						continue
					}
					x := g.X0 + (float64(i)+0.5)*g.Dx
					y := g.Y0 + (float64(j)+0.5)*g.Dy
					sumW += w
					sumR2 += w * (x*x + y*y)
				}
			}
		}
		return sumR2 / sumW
	}
	pencil := run(source.Pencil{})
	wide := run(source.UniformDisk{Radius: 5})
	if wide <= pencil {
		t.Fatalf("uniform 5 mm footprint (%g) not wider than pencil (%g)", wide, pencil)
	}
}

func TestSpecBuildRoundTrip(t *testing.T) {
	s := NewSpec(tissue.AdultHead(),
		source.Spec{Kind: source.KindGaussian, Param: 1.5},
		detector.Spec{Kind: detector.KindDisk, CenterX: 10, Radius: 2,
			Gate: detector.Gate{MinPath: 5, MaxPath: 500}})
	s.Boundary = BoundaryDeterministic
	s.AbsGrid = &GridSpec{N: 10, Edge: 40}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Boundary != BoundaryDeterministic || cfg.Gate.MaxPath != 500 {
		t.Fatal("spec fields lost in build")
	}
	tally, err := Run(cfg, 500, 41)
	if err != nil {
		t.Fatal(err)
	}
	if tally.Launched != 500 {
		t.Fatalf("launched %d", tally.Launched)
	}
}

func TestSpecRejectsBadSource(t *testing.T) {
	s := NewSpec(tissue.AdultHead(),
		source.Spec{Kind: "warp-drive"},
		detector.Spec{Kind: detector.KindAll})
	if err := s.Validate(); err == nil {
		t.Fatal("bad source spec accepted")
	}
}

func TestRunParallelWorkerCountIndependence(t *testing.T) {
	// RunParallel(n workers) must equal the sequential merge of the same
	// streams — already covered — and different worker counts must give
	// statistically close answers with the same seed (not identical, since
	// stream count changes the sample).
	cfg := func() *Config { return &Config{Model: tissue.AdultHead()} }
	t2, err := RunParallel(cfg(), 4000, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := RunParallel(cfg(), 4000, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Launched != 4000 || t4.Launched != 4000 {
		t.Fatalf("photon counts wrong: %d, %d", t2.Launched, t4.Launched)
	}
	if math.Abs(t2.DiffuseReflectance()-t4.DiffuseReflectance()) > 0.05 {
		t.Fatalf("worker count changed physics: %g vs %g",
			t2.DiffuseReflectance(), t4.DiffuseReflectance())
	}
}

func TestBoundaryModeString(t *testing.T) {
	if BoundaryProbabilistic.String() != "probabilistic" ||
		BoundaryDeterministic.String() != "deterministic" {
		t.Fatal("boundary mode names wrong")
	}
	if BoundaryMode(99).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}
