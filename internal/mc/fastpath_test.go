package mc_test

import (
	"math"
	"testing"

	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/mc"
	"repro/internal/tissue"
)

// opaqueGeometry hides the concrete geom.Layered type from the kernel's
// type switch, forcing the generic interface trace loop over the same
// physical stack — the "old path" reference the specialised tracer is
// gated against.
type opaqueGeometry struct{ geom.Geometry }

// close3Sigma asserts |a−b| ≤ 3σ for two independently estimated fractions
// of n launched photons (binomial variance bound; packet weights ≤ 1).
func close3Sigma(t *testing.T, name string, a, b float64, n int64) {
	t.Helper()
	nf := float64(n)
	sigma := math.Sqrt(a*(1-a)/nf + b*(1-b)/nf)
	if diff := math.Abs(a - b); diff > 3*sigma {
		t.Errorf("%s: fast path %.5g vs generic %.5g differ by %.3g > 3σ = %.3g",
			name, a, b, diff, 3*sigma)
	}
}

// TestLayeredFastPathMatchesGeneric is the statistical-equivalence gate of
// the kernel overhaul: the devirtualised layered tracer and the generic
// Geometry-interface tracer must agree on every acceptance observable
// within Monte Carlo noise, in both boundary modes. (Bit-level equality is
// not expected — the two paths may consume RNG draws in different
// branches — so the gate is 3σ on physical observables, with the committed
// golden fixtures pinning each path's exact output separately.)
func TestLayeredFastPathMatchesGeneric(t *testing.T) {
	n := int64(120_000)
	if testing.Short() {
		n = 25_000
	}
	model := tissue.AdultHead()
	det := detector.Annulus{RMin: 5, RMax: 15}

	for _, mode := range []mc.BoundaryMode{mc.BoundaryProbabilistic, mc.BoundaryDeterministic} {
		fast, err := mc.RunParallel(&mc.Config{
			Model: model, Detector: det, Boundary: mode,
		}, n, 101, 0)
		if err != nil {
			t.Fatal(err)
		}
		generic, err := mc.RunParallel(&mc.Config{
			Geometry: opaqueGeometry{geom.Layered{M: model}}, Detector: det, Boundary: mode,
		}, n, 202, 0)
		if err != nil {
			t.Fatal(err)
		}

		name := mode.String()
		if bal := math.Abs(fast.EnergyBalance()); bal > 1e-6*float64(n) {
			t.Fatalf("%s: fast-path energy balance broken: %g", name, bal)
		}
		if bal := math.Abs(generic.EnergyBalance()); bal > 1e-6*float64(n) {
			t.Fatalf("%s: generic-path energy balance broken: %g", name, bal)
		}

		close3Sigma(t, name+" diffuse reflectance", fast.DiffuseReflectance(), generic.DiffuseReflectance(), n)
		close3Sigma(t, name+" detected fraction", fast.DetectedFraction(), generic.DetectedFraction(), n)
		close3Sigma(t, name+" absorbance", fast.Absorbance(), generic.Absorbance(), n)
		for i := range fast.LayerAbsorbed {
			close3Sigma(t, name+" absorbed "+model.Layers[i].Name,
				fast.LayerAbsorbed[i]/fast.N(), generic.LayerAbsorbed[i]/generic.N(), n)
		}
		for i := 1; i < len(fast.LayerEnteredWeight); i++ {
			close3Sigma(t, name+" penetration "+model.Layers[i].Name,
				fast.PenetrationFraction(i), generic.PenetrationFraction(i), n)
		}

		// The mean detected pathlength (the DPF observable) must agree
		// within combined standard errors.
		if fast.DetectedCount > 50 && generic.DetectedCount > 50 {
			se := 3 * math.Hypot(fast.PathStats.StdErr(), generic.PathStats.StdErr())
			if d := math.Abs(fast.MeanPathlength() - generic.MeanPathlength()); d > se {
				t.Errorf("%s mean pathlength: %g vs %g differ by %g > %g",
					name, fast.MeanPathlength(), generic.MeanPathlength(), d, se)
			}
		}
	}
}
