package mc_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/optics"
	"repro/internal/tissue"
	"repro/internal/voxel"
)

// The golden-tally regression harness: small, fully deterministic
// simulations (fixed seed, fixed spec, fixed worker count) whose complete
// tallies are committed under testdata/. Any bit-level drift — an RNG
// change, a reordered draw, a refactored accumulation — fails the test, so
// hot-path rewrites are landable only when the physics provably did not
// move (or the fixtures are regenerated deliberately).
//
// Regenerate after an intentional change with:
//
//	go test ./internal/mc -run TestGoldenTallies -update
//
// and review the fixture diff like any other code change. Fixtures are
// pinned to one platform's libm (math.Log/Exp may differ across
// architectures in the last ulp); CI and the fixtures must agree.
var updateGolden = flag.Bool("update", false, "rewrite golden tally fixtures")

// goldenCases enumerates the committed scenarios. They are chosen to cover
// every hot-path branch: the devirtualised layered tracer in both boundary
// modes, the parallel merge order, the voxel DDA (fused and boundary-rich),
// and the optional scoring structures (grids, histograms, gate).
func goldenCases(t *testing.T) []struct {
	name string
	run  func() (*mc.Tally, error)
} {
	t.Helper()
	head := tissue.AdultHead()

	voxSlab := func() *voxel.Grid {
		g, err := voxel.FromModel(tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5),
			40, 40, 10, 1, 1, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	return []struct {
		name string
		run  func() (*mc.Tally, error)
	}{
		{"layered_head_prob", func() (*mc.Tally, error) {
			return mc.Run(&mc.Config{
				Model:    head,
				Detector: detector.Annulus{RMin: 10, RMax: 30},
				Gate:     detector.Gate{MinPath: 20, MaxPath: 600},
				PathHist: &mc.HistSpec{Min: 0, Max: 600, Bins: 60},
				Radial:   &mc.HistSpec{Min: 0, Max: 60, Bins: 30},
			}, 2500, 7)
		}},
		{"layered_head_det", func() (*mc.Tally, error) {
			return mc.Run(&mc.Config{
				Model:    head,
				Boundary: mc.BoundaryDeterministic,
				Detector: detector.Annulus{RMin: 10, RMax: 30},
			}, 1500, 11)
		}},
		{"layered_parallel3", func() (*mc.Tally, error) {
			return mc.RunParallel(&mc.Config{
				Model:    head,
				Detector: detector.Annulus{RMin: 10, RMax: 30},
			}, 3000, 5, 3)
		}},
		{"layered_moments", func() (*mc.Tally, error) {
			// The precision path: chunk moments recorded per stream and
			// merged across three parallel streams. Pins the moment
			// accumulators' values and their JSON/codec encodings.
			return mc.RunParallel(&mc.Config{
				Model:        head,
				Detector:     detector.Annulus{RMin: 10, RMax: 30},
				TrackMoments: true,
			}, 3000, 5, 3)
		}},
		{"layered_pathgrid", func() (*mc.Tally, error) {
			return mc.Run(&mc.Config{
				Model:    tissue.HomogeneousWhiteMatter(),
				Detector: detector.Disk{CenterX: 3, Radius: 1},
				PathGrid: &mc.GridSpec{N: 8, Edge: 12},
			}, 1200, 3)
		}},
		{"voxel_slab", func() (*mc.Tally, error) {
			return mc.Run(&mc.Config{
				Geometry: voxSlab(),
				Detector: detector.Annulus{RMin: 1, RMax: 4},
				AbsGrid:  &mc.GridSpec{N: 8, Edge: 20},
			}, 1500, 13)
		}},
		{"voxel_inclusion", func() (*mc.Tally, error) {
			g := voxSlab()
			inc, err := g.AddMedium("absorber", optics.Properties{MuA: 2, MuS: 19, G: 0.9, N: 1.5})
			if err != nil {
				return nil, err
			}
			if painted := g.PaintSphere(inc, 0, 0, 2.5, 1.5); painted == 0 {
				return nil, fmt.Errorf("sphere painted nothing")
			}
			return mc.Run(&mc.Config{
				Geometry: g,
				Detector: detector.Annulus{RMin: 1, RMax: 4},
			}, 1200, 17)
		}},
	}
}

// TestGoldenTallies runs every golden scenario and compares the complete
// tally byte-for-byte against its committed fixture.
func TestGoldenTallies(t *testing.T) {
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			tally, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(tally, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", "golden_"+tc.name+".json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(got))
				return
			}

			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture %s (run with -update to create): %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("tally drifted from %s.\n"+
					"The physics of the kernel changed at the bit level. If this is an\n"+
					"intentional sampling/ordering change, regenerate fixtures with\n"+
					"`go test ./internal/mc -run TestGoldenTallies -update` and commit the\n"+
					"diff; otherwise this is a regression.\nfirst difference near byte %d",
					path, firstDiff(got, want))
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestGoldenRoundTrip guards the harness itself: a tally must survive the
// JSON round trip bit-exactly (Go's float64 marshalling is shortest
// round-trip), otherwise byte comparison would be meaningless.
func TestGoldenRoundTrip(t *testing.T) {
	tally, err := mc.Run(&mc.Config{
		Model:    tissue.AdultHead(),
		Detector: detector.Annulus{RMin: 10, RMax: 30},
		Radial:   &mc.HistSpec{Min: 0, Max: 60, Bins: 30},
	}, 500, 23)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tally)
	if err != nil {
		t.Fatal(err)
	}
	var back mc.Tally
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	blob2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("tally JSON is not round-trip stable; golden byte comparison is unsound")
	}
}
