// Package vec implements the small amount of 3-D vector algebra needed by
// the photon transport kernel: direction bookkeeping, scattering rotations
// and boundary geometry.
package vec

import "math"

// V is a 3-D vector. Z points into the tissue; the surface is the z = 0
// plane, matching the usual MCML slab convention.
type V struct {
	X, Y, Z float64
}

// Add returns a + b.
func (a V) Add(b V) V { return V{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V) Sub(b V) V { return V{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a scaled by s.
func (a V) Scale(s float64) V { return V{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the scalar product a·b.
func (a V) Dot(b V) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the vector product a×b.
func (a V) Cross(b V) V {
	return V{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns |a|.
func (a V) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Normalize returns a/|a|. It returns the zero vector unchanged.
func (a V) Normalize() V {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// Scatter rotates the unit direction d by polar angle θ (given as cosθ) and
// azimuthal angle φ, returning the new unit direction. This is the standard
// MCML direction update (Prahl et al. 1989, Wang & Jacques MCML manual).
func Scatter(d V, cosTheta, phi float64) V {
	sinTheta := math.Sqrt(1 - cosTheta*cosTheta)
	cosPhi := math.Cos(phi)
	sinPhi := math.Sin(phi)

	// Near-vertical propagation needs the degenerate branch to avoid the
	// 1/sqrt(1-uz²) singularity.
	if math.Abs(d.Z) > 0.99999 {
		sign := 1.0
		if d.Z < 0 {
			sign = -1.0
		}
		return V{
			sinTheta * cosPhi,
			sinTheta * sinPhi,
			sign * cosTheta,
		}
	}

	denom := math.Sqrt(1 - d.Z*d.Z)
	return V{
		sinTheta*(d.X*d.Z*cosPhi-d.Y*sinPhi)/denom + d.X*cosTheta,
		sinTheta*(d.Y*d.Z*cosPhi+d.X*sinPhi)/denom + d.Y*cosTheta,
		-sinTheta*cosPhi*denom + d.Z*cosTheta,
	}
}
