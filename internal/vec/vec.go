// Package vec implements the small amount of 3-D vector algebra needed by
// the photon transport kernel: direction bookkeeping, scattering rotations
// and boundary geometry.
package vec

import "math"

// V is a 3-D vector. Z points into the tissue; the surface is the z = 0
// plane, matching the usual MCML slab convention.
type V struct {
	X, Y, Z float64
}

// Add returns a + b.
func (a V) Add(b V) V { return V{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V) Sub(b V) V { return V{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a scaled by s.
func (a V) Scale(s float64) V { return V{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the scalar product a·b.
func (a V) Dot(b V) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the vector product a×b.
func (a V) Cross(b V) V {
	return V{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns |a|.
func (a V) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Normalize returns a/|a|. It returns the zero vector unchanged.
func (a V) Normalize() V {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// Scatter rotates the unit direction d by polar angle θ (given as cosθ) and
// azimuthal angle φ, returning the new unit direction. This is the standard
// MCML direction update (Prahl et al. 1989, Wang & Jacques MCML manual).
func Scatter(d V, cosTheta, phi float64) V {
	return ScatterCS(d, cosTheta, math.Cos(phi), math.Sin(phi))
}

// ScatterCS is Scatter with the azimuth supplied directly as (cos φ, sin φ)
// — the transport hot path samples that pair without trigonometric calls
// (rng.AzimuthUnit). The rotation needs sinθ/√(1−uz²) and sinθ·√(1−uz²);
// both come from a single square root of the product, so one event costs
// one sqrt and one division.
func ScatterCS(d V, cosTheta, cosPhi, sinPhi float64) V {
	st2 := 1 - cosTheta*cosTheta // sin²θ

	// Near-vertical propagation needs the degenerate branch to avoid the
	// 1/√(1-uz²) singularity.
	if math.Abs(d.Z) > 0.99999 {
		sinTheta := math.Sqrt(st2)
		sign := 1.0
		if d.Z < 0 {
			sign = -1.0
		}
		return V{
			sinTheta * cosPhi,
			sinTheta * sinPhi,
			sign * cosTheta,
		}
	}
	if st2 <= 0 {
		// θ = 0 or π exactly: pure forward/backward scattering.
		return d.Scale(cosTheta)
	}

	dn2 := 1 - d.Z*d.Z        // denom² = 1−uz²
	g := math.Sqrt(st2 * dn2) // sinθ·denom
	f := st2 / g              // sinθ/denom
	return V{
		f*(d.X*d.Z*cosPhi-d.Y*sinPhi) + d.X*cosTheta,
		f*(d.Y*d.Z*cosPhi+d.X*sinPhi) + d.Y*cosTheta,
		-cosPhi*g + d.Z*cosTheta,
	}
}
