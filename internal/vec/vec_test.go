package vec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBasicAlgebra(t *testing.T) {
	a := V{1, 2, 3}
	b := V{4, -5, 6}
	if got := a.Add(b); got != (V{5, -3, 9}) {
		t.Fatalf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (V{-3, 7, -3}) {
		t.Fatalf("Sub = %+v", got)
	}
	if got := a.Scale(2); got != (V{2, 4, 6}) {
		t.Fatalf("Scale = %+v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Fatalf("Dot = %g", got)
	}
}

func TestCross(t *testing.T) {
	x := V{1, 0, 0}
	y := V{0, 1, 0}
	if got := x.Cross(y); got != (V{0, 0, 1}) {
		t.Fatalf("x×y = %+v, want z", got)
	}
	if got := y.Cross(x); got != (V{0, 0, -1}) {
		t.Fatalf("y×x = %+v, want -z", got)
	}
}

func TestNormalize(t *testing.T) {
	v := V{3, 4, 0}.Normalize()
	if !almostEq(v.Norm(), 1, 1e-12) {
		t.Fatalf("normalized norm = %g", v.Norm())
	}
	zero := V{}.Normalize()
	if zero != (V{}) {
		t.Fatalf("Normalize(0) = %+v", zero)
	}
}

// Property: Scatter always returns a unit vector, for any incoming unit
// direction and any valid (cosθ, φ).
func TestScatterPreservesNorm(t *testing.T) {
	r := rng.New(5)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		// Random unit direction, including near-vertical ones.
		d := V{rr.Gaussian(), rr.Gaussian(), rr.Gaussian()}.Normalize()
		if d == (V{}) {
			return true
		}
		if r.Float64() < 0.2 {
			d = V{0, 0, 1} // exercise the degenerate branch
			if r.Float64() < 0.5 {
				d.Z = -1
			}
		}
		cos := 2*rr.Float64() - 1
		phi := rr.Azimuth()
		out := Scatter(d, cos, phi)
		return almostEq(out.Norm(), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the angle between the incoming and scattered direction equals
// the sampled polar angle.
func TestScatterAngleMatchesCosine(t *testing.T) {
	rr := rng.New(9)
	for i := 0; i < 5000; i++ {
		d := V{rr.Gaussian(), rr.Gaussian(), rr.Gaussian()}.Normalize()
		if d.Norm() == 0 {
			continue
		}
		cos := 2*rr.Float64() - 1
		out := Scatter(d, cos, rr.Azimuth())
		if !almostEq(out.Dot(d), cos, 1e-9) {
			t.Fatalf("scatter angle mismatch: d·out = %g, want %g", out.Dot(d), cos)
		}
	}
}

func TestScatterDegenerateVertical(t *testing.T) {
	// Straight down, scatter by θ with φ=0: expect (sinθ, 0, cosθ).
	out := Scatter(V{0, 0, 1}, 0.5, 0)
	want := V{math.Sqrt(1 - 0.25), 0, 0.5}
	if !almostEq(out.X, want.X, 1e-12) || !almostEq(out.Z, want.Z, 1e-12) {
		t.Fatalf("Scatter(ẑ) = %+v, want %+v", out, want)
	}
	// Straight up keeps the sign of z.
	up := Scatter(V{0, 0, -1}, 0.5, 0)
	if up.Z >= 0 {
		t.Fatalf("Scatter(-ẑ) z = %g, want negative", up.Z)
	}
}
