package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, x := range []float64{1, 2, 3, 4, 5} {
		r.Add(x, 1)
	}
	if r.N != 5 {
		t.Fatalf("N = %d", r.N)
	}
	if !almostEq(r.Mean(), 3, 1e-12) {
		t.Fatalf("mean = %g", r.Mean())
	}
	if !almostEq(r.Variance(), 2, 1e-12) {
		t.Fatalf("variance = %g", r.Variance())
	}
	if r.MinV != 1 || r.MaxV != 5 {
		t.Fatalf("min/max = %g/%g", r.MinV, r.MaxV)
	}
}

func TestRunningWeighted(t *testing.T) {
	var r Running
	r.Add(10, 3) // like three 10s
	r.Add(20, 1)
	if !almostEq(r.Mean(), 12.5, 1e-12) {
		t.Fatalf("weighted mean = %g", r.Mean())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 || r.CI95() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

// Property: merging partial accumulators equals accumulating the
// concatenated stream.
func TestRunningMergeEquivalence(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		r := rng.New(seed)
		xs := make([]float64, n)
		ws := make([]float64, n)
		for i := range xs {
			xs[i] = 10 * r.Gaussian()
			ws[i] = r.Float64Open()
		}
		cut := int(r.Float64() * float64(n))

		var whole, a, b Running
		for i := range xs {
			whole.Add(xs[i], ws[i])
			if i < cut {
				a.Add(xs[i], ws[i])
			} else {
				b.Add(xs[i], ws[i])
			}
		}
		a.Merge(b)
		return a.N == whole.N &&
			almostEq(a.Mean(), whole.Mean(), 1e-9) &&
			almostEq(a.Variance(), whole.Variance(), 1e-9) &&
			a.MinV == whole.MinV && a.MaxV == whole.MaxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEmptySides(t *testing.T) {
	var a, empty Running
	a.Add(5, 1)
	before := a
	a.Merge(empty)
	if a != before {
		t.Fatal("merging empty changed accumulator")
	}
	var c Running
	c.Merge(before)
	if c.Mean() != 5 {
		t.Fatal("merging into empty lost data")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0, 1)    // bin 0
	h.Add(9.99, 1) // bin 9
	h.Add(5, 2)    // bin 5
	h.Add(-1, 1)   // under
	h.Add(10, 1)   // over (half-open range)
	if h.Counts[0] != 1 || h.Counts[9] != 1 || h.Counts[5] != 2 {
		t.Fatalf("counts %v", h.Counts)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over = %g/%g", h.Under, h.Over)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %g", h.Total())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if h.BinCenter(0) != 0.5 || h.BinCenter(9) != 9.5 {
		t.Fatalf("bin centers %g, %g", h.BinCenter(0), h.BinCenter(9))
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	a.Add(1, 1)
	b.Add(1, 2)
	b.Add(11, 4)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Counts[0] != 3 || a.Over != 4 {
		t.Fatalf("merged %v over=%g", a.Counts, a.Over)
	}
	c := NewHistogram(0, 5, 5)
	if err := a.Merge(c); err == nil {
		t.Fatal("incompatible merge succeeded")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i)+0.5, 1)
	}
	med := h.Quantile(0.5)
	if math.Abs(med-50) > 1.5 {
		t.Fatalf("median = %g, want ≈50", med)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %g", q)
	}
}

func TestHistogramPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram spec did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rng.New(3)
	var small, large Running
	for i := 0; i < 100; i++ {
		small.Add(r.Gaussian(), 1)
	}
	for i := 0; i < 10000; i++ {
		large.Add(r.Gaussian(), 1)
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %g vs %g", large.CI95(), small.CI95())
	}
}
