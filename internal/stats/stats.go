// Package stats provides the small statistical toolkit used by tallies,
// tests and the experiment harnesses: streaming moments, histograms and
// confidence intervals. All accumulators are plain data (gob-friendly) and
// merge associatively for distributed reduction.
package stats

import (
	"fmt"
	"math"
)

// Running accumulates count, mean and variance of a weighted stream using a
// merge-friendly sum representation (sums of w, w·x, w·x²).
type Running struct {
	N          int64   // number of samples
	SumW       float64 // Σw
	SumWX      float64 // Σw·x
	SumWX2     float64 // Σw·x²
	MinV, MaxV float64
}

// Add accumulates one sample x with weight w.
func (r *Running) Add(x, w float64) {
	if r.N == 0 || x < r.MinV {
		r.MinV = x
	}
	if r.N == 0 || x > r.MaxV {
		r.MaxV = x
	}
	r.N++
	r.SumW += w
	r.SumWX += w * x
	r.SumWX2 += w * x * x
}

// Merge folds o into r.
func (r *Running) Merge(o Running) {
	if o.N == 0 {
		return
	}
	if r.N == 0 {
		*r = o
		return
	}
	if o.MinV < r.MinV {
		r.MinV = o.MinV
	}
	if o.MaxV > r.MaxV {
		r.MaxV = o.MaxV
	}
	r.N += o.N
	r.SumW += o.SumW
	r.SumWX += o.SumWX
	r.SumWX2 += o.SumWX2
}

// Mean returns the weighted mean, or 0 for an empty accumulator.
func (r *Running) Mean() float64 {
	if r.SumW == 0 {
		return 0
	}
	return r.SumWX / r.SumW
}

// Variance returns the weighted population variance.
func (r *Running) Variance() float64 {
	if r.SumW == 0 {
		return 0
	}
	m := r.Mean()
	v := r.SumWX2/r.SumW - m*m
	if v < 0 { // numerical noise
		return 0
	}
	return v
}

// StdDev returns the weighted standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean treating N as the effective
// sample count.
func (r *Running) StdErr() float64 {
	if r.N == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.N))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (r *Running) CI95() float64 { return 1.96 * r.StdErr() }

// Histogram is a fixed-range weighted histogram with uniform bins.
// Out-of-range samples accumulate in Under/Over.
type Histogram struct {
	Min, Max    float64
	Counts      []float64 // weighted counts per bin
	Under, Over float64
}

// NewHistogram returns a histogram over [min, max) with n bins.
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic(fmt.Sprintf("stats: bad histogram range [%g,%g) n=%d", min, max, n))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]float64, n)}
}

// Add accumulates weight w at value x.
func (h *Histogram) Add(x, w float64) {
	switch {
	case x < h.Min:
		h.Under += w
	case x >= h.Max:
		h.Over += w
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i == len(h.Counts) { // x == Max ruled out above, guard rounding
			i--
		}
		h.Counts[i] += w
	}
}

// Merge folds o into h; the histograms must share geometry.
func (h *Histogram) Merge(o *Histogram) error {
	if o.Min != h.Min || o.Max != h.Max || len(o.Counts) != len(h.Counts) {
		return fmt.Errorf("stats: merging incompatible histograms")
	}
	h.Under += o.Under
	h.Over += o.Over
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	return nil
}

// Total returns the total weight including out-of-range mass.
func (h *Histogram) Total() float64 {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the centre value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Quantile returns an approximate weighted quantile (0 ≤ q ≤ 1) from the
// in-range mass, interpolated within the containing bin.
func (h *Histogram) Quantile(q float64) float64 {
	inRange := 0.0
	for _, c := range h.Counts {
		inRange += c
	}
	if inRange == 0 {
		return h.Min
	}
	target := q * inRange
	cum := 0.0
	w := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		if cum+c >= target {
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / c
			}
			return h.Min + (float64(i)+frac)*w
		}
		cum += c
	}
	return h.Max
}
