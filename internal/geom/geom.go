// Package geom defines the Geometry abstraction the Monte Carlo kernel
// traces photons through. A Geometry partitions space into numbered regions
// of homogeneous optical properties and answers the two questions the
// hop–drop–spin loop asks on its hot path: "how far to the next boundary
// along this ray?" and "what is on the other side?". The layered slab model
// of the paper and the heterogeneous voxel medium (internal/voxel) are both
// implementations, so every runner, wire protocol and analysis layer works
// unchanged over either.
package geom

import (
	"repro/internal/optics"
	"repro/internal/vec"
)

// ExitKind classifies a boundary that leaves the medium entirely.
type ExitKind uint8

const (
	// ExitNone marks an internal boundary between two regions.
	ExitNone ExitKind = iota
	// ExitTop marks escape through the z = 0 entry surface (scored as
	// diffuse reflectance and eligible for detection).
	ExitTop
	// ExitBottom marks escape through the deep face of a finite medium
	// (scored as transmittance).
	ExitBottom
	// ExitLateral marks escape through the sides of a laterally bounded
	// medium such as a voxel grid (layered slabs are laterally infinite and
	// never produce it).
	ExitLateral
)

// String implements fmt.Stringer.
func (e ExitKind) String() string {
	switch e {
	case ExitNone:
		return "none"
	case ExitTop:
		return "top"
	case ExitBottom:
		return "bottom"
	case ExitLateral:
		return "lateral"
	default:
		return "ExitKind(?)"
	}
}

// Hit describes the boundary at the end of a region-limited flight: the
// information the kernel needs to resolve Fresnel reflection/refraction
// without re-deriving the local geometry.
type Hit struct {
	// Normal is the unit boundary normal oriented against the incident
	// direction (Normal·dir ≤ 0), so cosθi = −Normal·dir ≥ 0.
	Normal vec.V
	// Next is the region beyond the boundary; meaningful only when
	// Exit == ExitNone.
	Next int
	// N2 is the refractive index beyond the boundary (the ambient index
	// when Exit != ExitNone).
	N2 float64
	// Exit marks boundaries that leave the medium entirely.
	Exit ExitKind
}

// Geometry is the medium abstraction of the transport kernel. Regions are
// dense integer handles in [0, NumRegions()); per-region tallies (absorbed
// weight, penetration) are indexed by them. Implementations must be safe
// for concurrent read-only use — one kernel per goroutine traces through a
// shared Geometry.
type Geometry interface {
	// NumRegions returns the number of distinct regions, sizing the
	// per-region tallies.
	NumRegions() int
	// RegionName returns a human-readable name for region r (layer or
	// medium name; may be empty).
	RegionName(r int) string
	// AmbientIndex returns the refractive index of the medium above the
	// z = 0 entry surface, used for the deterministic specular reflection
	// at launch.
	AmbientIndex() float64
	// RegionAt returns the region containing pos, or −1 for points outside
	// the medium entirely (e.g. beyond a voxel grid's lateral footprint —
	// the kernel scores such launches as lateral loss). Points on the
	// entry surface resolve to the region immediately below.
	RegionAt(pos vec.V) int
	// Props returns the optical properties of region r.
	Props(r int) optics.Properties
	// ToBoundary returns the distance s along unit direction dir from pos
	// (inside region r) to the first boundary where the medium changes,
	// and the Hit describing that boundary. Faces between same-region
	// volumes are not boundaries. s = +Inf (with a zero Hit) means the ray
	// never leaves the region.
	//
	// maxDist is the caller's sampled free path: an implementation may
	// stop searching once the boundary is provably beyond it and return
	// any s > maxDist with a zero Hit (the kernel scatters before reaching
	// it). Pass +Inf to force the full search. This keeps voxel traversal
	// O(1) per scattering event in optically thick media instead of
	// O(grid) per event.
	ToBoundary(pos, dir vec.V, r int, maxDist float64) (s float64, hit Hit)
	// Validate reports the first structural problem with the geometry.
	Validate() error
}

// Reflect mirrors the unit direction d in the plane with unit normal n:
// d − 2(d·n)n. For an axis-aligned normal it reduces exactly to the MCML
// component flip.
func Reflect(d, n vec.V) vec.V {
	return d.Sub(n.Scale(2 * d.Dot(n)))
}

// Refract bends the unit direction d across a boundary with unit normal n
// oriented against d (d·n ≤ 0), given the index ratio η = n1/n2 and the
// transmitted polar cosine cosT from optics.Fresnel:
//
//	t = η·d + (η·cosθi − cosT)·n
//
// For a horizontal boundary this reproduces the classic MCML update
// (scale the tangential components by η, set the normal component to cosT).
func Refract(d, n vec.V, eta, cosT float64) vec.V {
	cosI := -d.Dot(n)
	return d.Scale(eta).Add(n.Scale(eta*cosI - cosT))
}
