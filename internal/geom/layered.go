package geom

import (
	"math"

	"repro/internal/optics"
	"repro/internal/tissue"
	"repro/internal/vec"
)

// Layered adapts the layered slab tissue.Model to the Geometry interface:
// regions are layer indices, boundaries are the horizontal planes between
// layers. This is the fast path — distance to boundary is a single division
// — and reproduces the original MCML-style kernel behaviour exactly.
type Layered struct {
	M *tissue.Model
}

// NumRegions returns the layer count.
func (l Layered) NumRegions() int { return l.M.NumLayers() }

// RegionName returns the layer name.
func (l Layered) RegionName(r int) string {
	if r < 0 || r >= len(l.M.Layers) {
		return ""
	}
	return l.M.Layers[r].Name
}

// AmbientIndex returns the index of the medium above the scalp.
func (l Layered) AmbientIndex() float64 { return l.M.NAbove }

// RegionAt returns the layer containing pos, clamped into the stack.
func (l Layered) RegionAt(pos vec.V) int {
	r := l.M.LayerAt(pos.Z)
	if r < 0 {
		return 0
	}
	if n := l.M.NumLayers(); r >= n {
		return n - 1
	}
	return r
}

// Props returns layer r's optical properties.
func (l Layered) Props(r int) optics.Properties { return l.M.Layers[r].Props }

// ToBoundary returns the distance to the top or bottom plane of layer r
// along dir. A horizontal ray (dir.Z == 0) never leaves the layer; a ray
// heading into a semi-infinite final layer returns +Inf with the bottom
// hit descriptor (never reached). The plane distance is a single division,
// so maxDist is ignored.
func (l Layered) ToBoundary(pos, dir vec.V, r int, maxDist float64) (float64, Hit) {
	switch {
	case dir.Z > 0:
		db := (l.M.Boundary(r+1) - pos.Z) / dir.Z
		hit := Hit{
			Normal: vec.V{X: 0, Y: 0, Z: -1},
			Next:   r + 1,
			N2:     l.M.IndexBelow(r),
		}
		if r == l.M.NumLayers()-1 {
			hit.Next = r
			hit.Exit = ExitBottom
		}
		return db, hit
	case dir.Z < 0:
		db := (pos.Z - l.M.Boundary(r)) / -dir.Z
		hit := Hit{
			Normal: vec.V{X: 0, Y: 0, Z: 1},
			Next:   r - 1,
			N2:     l.M.IndexAbove(r),
		}
		if r == 0 {
			hit.Next = 0
			hit.Exit = ExitTop
		}
		return db, hit
	}
	return math.Inf(1), Hit{}
}

// Validate delegates to the model.
func (l Layered) Validate() error { return l.M.Validate() }
