package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/optics"
	"repro/internal/rng"
	"repro/internal/tissue"
	"repro/internal/vec"
)

func adultLayered() Layered { return Layered{M: tissue.AdultHead()} }

func TestLayeredRegions(t *testing.T) {
	l := adultLayered()
	if l.NumRegions() != 5 {
		t.Fatalf("NumRegions = %d, want 5", l.NumRegions())
	}
	if l.AmbientIndex() != tissue.AmbientIndex {
		t.Fatalf("AmbientIndex = %g", l.AmbientIndex())
	}
	if name := l.RegionName(0); name != "scalp" {
		t.Fatalf("RegionName(0) = %q", name)
	}
	if name := l.RegionName(99); name != "" {
		t.Fatalf("RegionName(99) = %q, want empty", name)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestLayeredRegionAt(t *testing.T) {
	l := adultLayered()
	cases := []struct {
		z    float64
		want int
	}{
		{-1, 0},  // above the surface clamps to the first layer
		{0, 0},   // entry surface
		{2.9, 0}, // scalp
		{3.5, 1}, // skull
		{11, 2},  // csf
		{13, 3},  // grey
		{100, 4}, // deep white matter
	}
	for _, c := range cases {
		if got := l.RegionAt(vec.V{Z: c.z}); got != c.want {
			t.Errorf("RegionAt(z=%g) = %d, want %d", c.z, got, c.want)
		}
	}
}

func TestLayeredToBoundaryDown(t *testing.T) {
	l := adultLayered()
	pos := vec.V{Z: 1}
	dir := vec.V{Z: 1}
	s, hit := l.ToBoundary(pos, dir, 0, math.Inf(1))
	if math.Abs(s-2) > 1e-12 {
		t.Fatalf("distance to scalp bottom = %g, want 2", s)
	}
	if hit.Exit != ExitNone || hit.Next != 1 {
		t.Fatalf("hit = %+v, want internal crossing into layer 1", hit)
	}
	if hit.Normal.Dot(dir) >= 0 {
		t.Fatalf("normal %v not oriented against dir %v", hit.Normal, dir)
	}
	if hit.N2 != tissue.SkullProps.N {
		t.Fatalf("N2 = %g, want skull index", hit.N2)
	}
}

func TestLayeredToBoundaryUpAndExit(t *testing.T) {
	l := adultLayered()
	s, hit := l.ToBoundary(vec.V{Z: 1}, vec.V{Z: -1}, 0, math.Inf(1))
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("distance to surface = %g, want 1", s)
	}
	if hit.Exit != ExitTop {
		t.Fatalf("exit = %v, want top", hit.Exit)
	}
	if hit.N2 != tissue.AmbientIndex {
		t.Fatalf("N2 = %g, want ambient", hit.N2)
	}

	// Semi-infinite final layer: heading down never reaches a boundary.
	s, _ = l.ToBoundary(vec.V{Z: 20}, vec.V{Z: 1}, 4, math.Inf(1))
	if !math.IsInf(s, 1) {
		t.Fatalf("distance in semi-infinite layer = %g, want +Inf", s)
	}

	// Horizontal flight never leaves a layer.
	s, _ = l.ToBoundary(vec.V{Z: 1}, vec.V{X: 1}, 0, math.Inf(1))
	if !math.IsInf(s, 1) {
		t.Fatalf("horizontal distance = %g, want +Inf", s)
	}
}

func TestLayeredBottomExitFiniteStack(t *testing.T) {
	m := tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5)
	l := Layered{M: m}
	s, hit := l.ToBoundary(vec.V{Z: 4}, vec.V{Z: 1}, 0, math.Inf(1))
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("distance to bottom = %g, want 1", s)
	}
	if hit.Exit != ExitBottom {
		t.Fatalf("exit = %v, want bottom", hit.Exit)
	}
	if hit.N2 != m.NBelow {
		t.Fatalf("N2 = %g, want NBelow", hit.N2)
	}
}

// TestReflectRefractMatchZForms checks the general vector forms reduce
// exactly to the MCML z-axis updates for horizontal boundaries: reflection
// flips the z component, refraction scales the tangential components by
// n1/n2 and sets the normal component to cosT.
func TestReflectRefractMatchZForms(t *testing.T) {
	d := vec.V{X: 0.3, Y: -0.4, Z: math.Sqrt(1 - 0.25)}
	down := vec.V{Z: -1} // normal against a down-going packet

	if got, want := Reflect(d, down), (vec.V{X: d.X, Y: d.Y, Z: -d.Z}); got != want {
		t.Fatalf("Reflect = %v, want %v", got, want)
	}

	n1, n2 := 1.4, 1.0
	refl, cosT := optics.Fresnel(n1, n2, d.Z)
	if refl >= 1 {
		t.Fatal("unexpected TIR in test setup")
	}
	eta := n1 / n2
	got := Refract(d, down, eta, cosT)
	want := vec.V{X: d.X * eta, Y: d.Y * eta, Z: cosT}
	if math.Abs(got.X-want.X) > 1e-15 || math.Abs(got.Y-want.Y) > 1e-15 ||
		math.Abs(got.Z-want.Z) > 1e-15 {
		t.Fatalf("Refract = %v, want %v", got, want)
	}
	// The transmitted direction must stay unit length.
	if norm := got.Norm(); math.Abs(norm-1) > 1e-12 {
		t.Fatalf("refracted norm = %g", norm)
	}

	// An upward-travelling photon keeps its negative normal component.
	up := Refract(vec.V{X: d.X, Y: d.Y, Z: -d.Z}, vec.V{Z: 1}, eta, cosT)
	if up.Z >= 0 {
		t.Fatal("upward refraction should keep negative z")
	}
}

// Property: refraction preserves the transverse direction (Snell's law is
// planar) and produces unit vectors, for random indices and incidences.
func TestRefractProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n1 := 1 + rr.Float64()
		n2 := 1 + rr.Float64()
		cosI := rr.Float64Open()
		sinI := math.Sqrt(1 - cosI*cosI)
		phi := rr.Azimuth()
		d := vec.V{X: sinI * math.Cos(phi), Y: sinI * math.Sin(phi), Z: cosI}
		sinT := n1 / n2 * sinI
		if sinT >= 1 {
			return true // total internal reflection: Refract not called
		}
		cosT := math.Sqrt(1 - sinT*sinT)
		out := Refract(d, vec.V{Z: -1}, n1/n2, cosT)
		if math.Abs(out.Norm()-1) > 1e-9 {
			return false
		}
		// Transverse components stay proportional: out.X/out.Y == d.X/d.Y.
		return math.Abs(out.X*d.Y-out.Y*d.X) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReflectPreservesNorm(t *testing.T) {
	d := vec.V{X: 0.6, Y: 0.48, Z: 0.64}.Normalize()
	n := vec.V{X: -1, Y: 0.2, Z: 0.1}.Normalize()
	r := Reflect(d, n)
	if math.Abs(r.Norm()-1) > 1e-12 {
		t.Fatalf("reflected norm = %g", r.Norm())
	}
	// Angle of incidence equals angle of reflection: r·n = −d·n.
	if math.Abs(r.Dot(n)+d.Dot(n)) > 1e-12 {
		t.Fatalf("reflection law violated: d·n=%g r·n=%g", d.Dot(n), r.Dot(n))
	}
	// The tangential component is unchanged.
	dt := d.Sub(n.Scale(d.Dot(n)))
	rt := r.Sub(n.Scale(r.Dot(n)))
	if dt.Sub(rt).Norm() > 1e-12 {
		t.Fatalf("tangential component changed: %v vs %v", dt, rt)
	}
}

func TestExitKindString(t *testing.T) {
	for e, want := range map[ExitKind]string{
		ExitNone: "none", ExitTop: "top", ExitBottom: "bottom", ExitLateral: "lateral",
	} {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
}
