package canon

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

type inner struct {
	Name string
	Val  float64
}

type outer struct {
	A   int
	B   uint64
	C   bool
	S   []inner
	P   *inner
	M   map[string]int
	F   float64
	hid int // unexported: must not affect the encoding
}

func enc(t *testing.T, v any) []byte {
	t.Helper()
	b, err := Append(nil, v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEqualValuesEncodeEqually(t *testing.T) {
	mk := func() outer {
		return outer{
			A: -3, B: 1 << 60, C: true,
			S: []inner{{"x", 1.5}, {"y", math.Inf(1)}},
			P: &inner{"p", -0.25},
			M: map[string]int{"k1": 1, "k2": 2, "k3": 3},
			F: 19.000000000000004,
		}
	}
	a, b := enc(t, mk()), enc(t, mk())
	if !bytes.Equal(a, b) {
		t.Fatalf("equal values encoded differently:\n%q\n%q", a, b)
	}
}

func TestEncodingIgnoresGobHistory(t *testing.T) {
	before := enc(t, outer{A: 1})
	// Churn gob's process-global type-ID counter, which made gob-based
	// content keys history-dependent.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(outer{A: 1}); err != nil {
		t.Fatal(err)
	}
	if after := enc(t, outer{A: 1}); !bytes.Equal(before, after) {
		t.Fatalf("encoding moved after unrelated gob use:\n%q\n%q", before, after)
	}
}

func TestDistinguishesValues(t *testing.T) {
	seen := map[string]string{}
	for name, v := range map[string]any{
		"int-1":       1,
		"uint-1":      uint(1),
		"string-1":    "1",
		"float-1":     1.0,
		"bool":        true,
		"slice-1":     []int{1},
		"nil-ptr":     (*inner)(nil),
		"ptr":         &inner{},
		"neg-zero":    math.Copysign(0, -1),
		"pos-zero":    0.0,
		"inf":         math.Inf(1),
		"neg-inf":     math.Inf(-1),
		"empty-s":     "",
		"struct-zero": inner{},
	} {
		e := string(enc(t, v))
		if prev, dup := seen[e]; dup {
			t.Fatalf("%s and %s collide: %q", name, prev, e)
		}
		seen[e] = name
	}
}

func TestStringsCannotForgeStructure(t *testing.T) {
	// A string containing encoding syntax must not collide with the
	// structure it mimics.
	a := enc(t, []string{"ab", "c"})
	b := enc(t, []string{"a", "bc"})
	if bytes.Equal(a, b) {
		t.Fatalf("length prefixes failed: %q", a)
	}
}

func TestMapOrderCanonical(t *testing.T) {
	// Build the same map with different insertion orders.
	m1 := map[string]int{}
	m2 := map[string]int{}
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, k := range keys {
		m1[k] = i
	}
	for i := len(keys) - 1; i >= 0; i-- {
		m2[keys[i]] = i
	}
	if !bytes.Equal(enc(t, m1), enc(t, m2)) {
		t.Fatal("map encoding depends on insertion order")
	}
}

func TestNaNCollapses(t *testing.T) {
	quiet := math.NaN()
	payload := math.Float64frombits(math.Float64bits(quiet) ^ 1)
	if !bytes.Equal(enc(t, quiet), enc(t, payload)) {
		t.Fatal("NaN payloads must hash alike")
	}
}

func TestUnsupportedKindErrors(t *testing.T) {
	if _, err := Append(nil, func() {}); err == nil {
		t.Fatal("func encoded without error")
	}
	if _, err := Append(nil, outer{}); err != nil {
		t.Fatalf("plain struct rejected: %v", err)
	}
	type bad struct{ C chan int }
	if _, err := Append(nil, bad{}); err == nil {
		t.Fatal("chan field encoded without error")
	}
}

// TestGolden pins the byte format: cache keys, job IDs and report merge
// digests are all derived from these bytes, so an accidental format
// change silently invalidates every stored digest. Change this golden
// only deliberately, together with a note in DESIGN.md.
func TestGolden(t *testing.T) {
	v := outer{
		A: 7, B: 9, C: true,
		S: []inner{{"x", 0.5}},
		M: map[string]int{"b": 2, "a": 1},
		F: math.Inf(1),
	}
	const want = "t{1:Ai7;1:Bu9;1:Cb1;1:Sl1;t{4:Names1:x;3:Valf0x1p-01;}1:Pn;1:Mm2;s1:a;i1;s1:b;i2;1:Ff+Inf;}"
	if got := string(enc(t, v)); got != want {
		t.Fatalf("canonical format drifted:\ngot  %q\nwant %q", got, want)
	}
}
