// Package canon encodes plain-data values into a canonical byte form for
// content addressing: equal values always produce equal bytes, in every
// process, regardless of what else the process has serialised before.
//
// Neither of the stdlib's obvious candidates has that property over the
// repo's spec types. Gob grants wire type IDs from a process-global
// first-encode-wins counter, so the byte stream for identical values
// shifts with the process's encoding history (connecting a gob-protocol
// worker before the first job submission was enough to change every
// content key). JSON is history-free but cannot represent the ±Inf that
// semi-infinite tissue layers legitimately carry. This encoding is both:
// structs serialise their exported fields in declaration order, floats
// serialise as exact hex literals (covering ±Inf and NaN), and there is
// no registry, cache or counter anywhere.
//
// The format is for hashing, not interchange: there is no decoder, and
// the encoding of a type may only change together with every digest
// derived from it (cache keys, job IDs, report merge gates).
package canon

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strconv"
)

// Write encodes v canonically into w (typically a hash.Hash). It returns
// an error only for values outside the plain-data subset — funcs,
// channels, unsafe pointers, complex numbers and non-nil interface cycles
// have no canonical form.
func Write(w io.Writer, v any) error {
	buf, err := Append(nil, v)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Append appends the canonical encoding of v to dst and returns the
// extended slice.
func Append(dst []byte, v any) ([]byte, error) {
	return appendValue(dst, reflect.ValueOf(v))
}

// appendValue emits a kind tag before every value so that values of
// different shapes can never collide byte-wise ("1" the int, "1" the
// string and [1] the slice all encode distinctly), and length-prefixes
// everything variable-sized so no separator can be forged from data.
func appendValue(dst []byte, v reflect.Value) ([]byte, error) {
	if !v.IsValid() {
		return append(dst, 'z', ';'), nil // untyped nil
	}
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return append(dst, 'b', '1', ';'), nil
		}
		return append(dst, 'b', '0', ';'), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		dst = append(dst, 'i')
		dst = strconv.AppendInt(dst, v.Int(), 10)
		return append(dst, ';'), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		dst = append(dst, 'u')
		dst = strconv.AppendUint(dst, v.Uint(), 10)
		return append(dst, ';'), nil
	case reflect.Float32, reflect.Float64:
		// Hex float literals are exact for every finite value and spell
		// the infinities out; all NaN payloads collapse to "NaN", which
		// is fine for content addressing (a NaN-bearing spec is already
		// degenerate — it only must hash consistently).
		dst = append(dst, 'f')
		dst = strconv.AppendFloat(dst, v.Float(), 'x', -1, 64)
		return append(dst, ';'), nil
	case reflect.String:
		dst = append(dst, 's')
		dst = strconv.AppendInt(dst, int64(v.Len()), 10)
		dst = append(dst, ':')
		return append(append(dst, v.String()...), ';'), nil
	case reflect.Pointer:
		if v.IsNil() {
			return append(dst, 'n', ';'), nil
		}
		dst = append(dst, 'p')
		return appendValue(dst, v.Elem())
	case reflect.Interface:
		if v.IsNil() {
			return append(dst, 'n', ';'), nil
		}
		dst = append(dst, 'a')
		return appendValue(dst, v.Elem())
	case reflect.Slice:
		if v.IsNil() {
			// A nil slice and an empty slice mean the same experiment.
			dst = append(dst, 'l', '0', ';')
			return dst, nil
		}
		fallthrough
	case reflect.Array:
		dst = append(dst, 'l')
		dst = strconv.AppendInt(dst, int64(v.Len()), 10)
		dst = append(dst, ';')
		var err error
		for i := 0; i < v.Len(); i++ {
			if dst, err = appendValue(dst, v.Index(i)); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case reflect.Struct:
		t := v.Type()
		dst = append(dst, 't')
		dst = append(dst, '{')
		var err error
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			dst = strconv.AppendInt(dst, int64(len(f.Name)), 10)
			dst = append(dst, ':')
			dst = append(dst, f.Name...)
			if dst, err = appendValue(dst, v.Field(i)); err != nil {
				return nil, err
			}
		}
		return append(dst, '}'), nil
	case reflect.Map:
		// Maps iterate in random order; canonicalise by sorting the
		// entries on their encoded keys.
		dst = append(dst, 'm')
		dst = strconv.AppendInt(dst, int64(v.Len()), 10)
		dst = append(dst, ';')
		type kv struct{ k, kv []byte }
		entries := make([]kv, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			ek, err := appendValue(nil, iter.Key())
			if err != nil {
				return nil, err
			}
			ekv, err := appendValue(ek[:len(ek):len(ek)], iter.Value())
			if err != nil {
				return nil, err
			}
			entries = append(entries, kv{ek, ekv})
		}
		sort.Slice(entries, func(i, j int) bool {
			return string(entries[i].k) < string(entries[j].k)
		})
		for _, e := range entries {
			dst = append(dst, e.kv...)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("canon: %s has no canonical encoding", v.Kind())
	}
}
