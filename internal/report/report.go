// Package report persists simulation results: gob-encoded tally files that
// can be saved by workers, shipped around, merged offline (the sneakernet
// version of the DataManager's reduction) and rendered as text reports.
// The file format carries the spec alongside the tally so merges can verify
// the partial results belong to the same experiment.
package report

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"repro/internal/canon"
	"repro/internal/mc"
)

// magic guards against feeding arbitrary gob files into the merger.
const magic = "phomc-tally-v1"

// File is the persisted form of one (partial) simulation result.
type File struct {
	Magic string
	// SpecDigest fingerprints the experiment; only files with identical
	// digests may be merged.
	SpecDigest string
	Spec       mc.Spec
	// Meta records provenance.
	Seed    uint64
	Streams int
	Worker  string
	Tally   *mc.Tally
}

// Digest fingerprints a Spec by hashing its canonical encoding
// (internal/canon). The merge gate compares digests computed by different
// worker processes, so the encoding must not depend on process history —
// which rules out gob, whose wire type IDs come from a global counter
// ordered by whatever the process happened to encode first.
func Digest(spec *mc.Spec) (string, error) {
	h := sha256.New()
	if err := canon.Write(h, spec); err != nil {
		return "", fmt.Errorf("report: digest: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// New wraps a tally with its experiment fingerprint.
func New(spec *mc.Spec, seed uint64, streams int, worker string, tally *mc.Tally) (*File, error) {
	d, err := Digest(spec)
	if err != nil {
		return nil, err
	}
	return &File{
		Magic:      magic,
		SpecDigest: d,
		Spec:       *spec,
		Seed:       seed,
		Streams:    streams,
		Worker:     worker,
		Tally:      tally,
	}, nil
}

// Write encodes the file to w.
func (f *File) Write(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("report: write: %w", err)
	}
	return nil
}

// Read decodes a result file and validates its header.
func Read(r io.Reader) (*File, error) {
	var f File
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("report: read: %w", err)
	}
	if f.Magic != magic {
		return nil, fmt.Errorf("report: not a tally file (magic %q)", f.Magic)
	}
	if f.Tally == nil {
		return nil, fmt.Errorf("report: file has no tally")
	}
	want, err := Digest(&f.Spec)
	if err != nil {
		return nil, err
	}
	if want != f.SpecDigest {
		return nil, fmt.Errorf("report: spec digest mismatch (corrupt file?)")
	}
	return &f, nil
}

// Save writes the file to path.
func (f *File) Save(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Load reads a result file from path.
func Load(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return Read(in)
}

// Merge folds others into f. All files must share the spec digest, seed and
// stream count — i.e. be partial results of the same experiment.
func (f *File) Merge(others ...*File) error {
	for _, o := range others {
		if o.SpecDigest != f.SpecDigest {
			return fmt.Errorf("report: merging results of different experiments (%s vs %s)",
				f.SpecDigest, o.SpecDigest)
		}
		if o.Seed != f.Seed || o.Streams != f.Streams {
			return fmt.Errorf("report: merging results with different seeding (%d/%d vs %d/%d)",
				f.Seed, f.Streams, o.Seed, o.Streams)
		}
		if err := f.Tally.Merge(o.Tally); err != nil {
			return err
		}
		f.Worker = f.Worker + "+" + o.Worker
	}
	return nil
}

// MergeFiles loads every path and merges them into one result.
func MergeFiles(paths ...string) (*File, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("report: no files to merge")
	}
	total, err := Load(paths[0])
	if err != nil {
		return nil, fmt.Errorf("%s: %w", paths[0], err)
	}
	for _, p := range paths[1:] {
		next, err := Load(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if err := total.Merge(next); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
	}
	return total, nil
}
