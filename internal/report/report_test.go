package report

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/source"
	"repro/internal/tissue"
)

func testSpec() *mc.Spec {
	return mc.NewSpec(tissue.AdultHead(),
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 5, RMax: 15})
}

func runChunk(t *testing.T, spec *mc.Spec, stream, streams int) *mc.Tally {
	t.Helper()
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	tally, err := mc.RunStream(cfg, 1000, 7, stream, streams)
	if err != nil {
		t.Fatal(err)
	}
	return tally
}

func TestWriteReadRoundTrip(t *testing.T) {
	spec := testSpec()
	tally := runChunk(t, spec, 0, 2)
	f, err := New(spec, 7, 2, "w0", tally)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tally.Launched != tally.Launched ||
		got.Tally.AbsorbedWeight != tally.AbsorbedWeight {
		t.Fatal("tally changed in round trip")
	}
	if got.Worker != "w0" || got.Seed != 7 || got.Streams != 2 {
		t.Fatal("metadata lost")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// A structurally valid gob of the wrong shape must also fail.
	var buf bytes.Buffer
	f := File{Magic: "something-else", Tally: &mc.Tally{}}
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

func TestDigestDistinguishesSpecs(t *testing.T) {
	a, err := Digest(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	other := testSpec()
	other.Detector.RMax = 20
	b, err := Digest(other)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different specs share a digest")
	}
	again, _ := Digest(testSpec())
	if a != again {
		t.Fatal("digest not deterministic")
	}
}

func TestMergeMatchesSingleRun(t *testing.T) {
	spec := testSpec()
	t0 := runChunk(t, spec, 0, 2)
	t1 := runChunk(t, spec, 1, 2)

	f0, err := New(spec, 7, 2, "w0", t0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := New(spec, 7, 2, "w1", t1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f0.Merge(f1); err != nil {
		t.Fatal(err)
	}
	if f0.Tally.Launched != 2000 {
		t.Fatalf("merged launched %d", f0.Tally.Launched)
	}
	if f0.Worker != "w0+w1" {
		t.Fatalf("provenance %q", f0.Worker)
	}

	// Ground truth: the same two streams merged directly.
	cfg, _ := spec.Build()
	want := mc.NewTally(cfg)
	want.Merge(runChunk(t, spec, 0, 2))
	want.Merge(runChunk(t, spec, 1, 2))
	if math.Abs(f0.Tally.AbsorbedWeight-want.AbsorbedWeight) > 1e-9 {
		t.Fatal("file merge diverged from direct merge")
	}
}

func TestMergeRejectsForeignResults(t *testing.T) {
	spec := testSpec()
	f0, _ := New(spec, 7, 2, "w0", runChunk(t, spec, 0, 2))

	other := testSpec()
	other.Detector.RMax = 99
	cfgOther, err := other.Build()
	if err != nil {
		t.Fatal(err)
	}
	tallyOther, err := mc.RunStream(cfgOther, 1000, 7, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	fOther, _ := New(other, 7, 2, "wX", tallyOther)
	if err := f0.Merge(fOther); err == nil {
		t.Fatal("merged results of different experiments")
	}

	// Same spec, different seed: also refused.
	fSeed, _ := New(spec, 8, 2, "wY", runChunk(t, spec, 1, 2))
	if err := f0.Merge(fSeed); err == nil {
		t.Fatal("merged results with different seeds")
	}
}

func TestSaveLoadMergeFiles(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	paths := make([]string, 3)
	for i := range paths {
		f, err := New(spec, 7, 3, "w", runChunk(t, spec, i, 3))
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, "part"+string(rune('0'+i))+".tally")
		if err := f.Save(paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	total, err := MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if total.Tally.Launched != 3000 {
		t.Fatalf("merged launched %d, want 3000", total.Tally.Launched)
	}
	if _, err := MergeFiles(); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := MergeFiles(filepath.Join(dir, "missing.tally")); err == nil {
		t.Fatal("missing file accepted")
	}
}
