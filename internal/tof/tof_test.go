package tof

import (
	"math"
	"testing"

	"repro/internal/mc"
	"repro/internal/optics"
	"repro/internal/stats"
	"repro/internal/tissue"
)

func TestConversionsRoundTrip(t *testing.T) {
	const n = 1.4
	for _, path := range []float64{1, 10, 123.4} {
		tt := TimeFromGeometricPath(path, n)
		back := PathFromTime(tt, n)
		if math.Abs(back-path) > 1e-9 {
			t.Fatalf("round trip %g → %g → %g", path, tt, back)
		}
	}
	// 299.792458 mm in vacuum-index medium = 1 ns.
	if got := TimeFromGeometricPath(C0, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("c·1ns = %g ns", got)
	}
	// Optical path already includes n.
	if TimeFromOpticalPath(C0) != 1 {
		t.Fatal("optical path conversion wrong")
	}
}

func TestHigherIndexSlowsLight(t *testing.T) {
	if TimeFromGeometricPath(100, 1.4) <= TimeFromGeometricPath(100, 1.0) {
		t.Fatal("light should be slower in denser media")
	}
}

func TestGateFromTimeWindow(t *testing.T) {
	g, err := GateFromTimeWindow(0.5, 1.0, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	wantMin := 0.5 * C0 / 1.4
	wantMax := 1.0 * C0 / 1.4
	if math.Abs(g.MinPath-wantMin) > 1e-9 || math.Abs(g.MaxPath-wantMax) > 1e-9 {
		t.Fatalf("gate [%g,%g], want [%g,%g]", g.MinPath, g.MaxPath, wantMin, wantMax)
	}
	// Open upper bound.
	g2, err := GateFromTimeWindow(0.5, 0, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if g2.MaxPath != 0 {
		t.Fatal("open time window should leave MaxPath open")
	}
}

func TestGateFromTimeWindowRejectsBad(t *testing.T) {
	cases := [][3]float64{
		{1, 0.5, 1.4}, // inverted
		{-1, 2, 1.4},  // negative
		{0.1, 1, 0.5}, // bad index
	}
	for _, c := range cases {
		if _, err := GateFromTimeWindow(c[0], c[1], c[2]); err == nil {
			t.Fatalf("window %v accepted", c)
		}
	}
}

func TestTPSFFromHistogram(t *testing.T) {
	h := stats.NewHistogram(0, 100, 10) // pathlength mm
	h.Add(5, 2)                         // bin 0, centre 5 mm
	h.Add(95, 1)                        // bin 9, centre 95 mm
	tp := FromPathHistogram(h, 1.4)
	if tp == nil || len(tp.TimesNs) != 10 {
		t.Fatal("TPSF shape wrong")
	}
	if math.Abs(tp.TimesNs[0]-TimeFromGeometricPath(5, 1.4)) > 1e-12 {
		t.Fatalf("bin time %g", tp.TimesNs[0])
	}
	if tp.Total() != 3 {
		t.Fatalf("total %g", tp.Total())
	}
	if tp.PeakTime() != tp.TimesNs[0] {
		t.Fatal("peak should be the heavier early bin")
	}
	wantMean := (2*tp.TimesNs[0] + 1*tp.TimesNs[9]) / 3
	if math.Abs(tp.MeanTime()-wantMean) > 1e-12 {
		t.Fatalf("mean time %g, want %g", tp.MeanTime(), wantMean)
	}
	if f := tp.WindowFraction(0, tp.TimesNs[0]); math.Abs(f-2.0/3) > 1e-12 {
		t.Fatalf("window fraction %g", f)
	}
}

func TestNilHistogram(t *testing.T) {
	if FromPathHistogram(nil, 1.4) != nil {
		t.Fatal("nil histogram should give nil TPSF")
	}
}

// End-to-end: simulate with a pathlength histogram, convert to a TPSF, and
// check the temporal gate matches the pathlength gate it was derived from.
func TestTimeGateMatchesPathGateEndToEnd(t *testing.T) {
	props := optics.FromTransport(1.0, 0.9, 0.01, 1.4)
	model := tissue.HomogeneousSlab("slab", props, 100)

	// Temporal gate 0–0.5 ns in n=1.4 → pathlength gate 0–107 mm.
	gate, err := GateFromTimeWindow(0, 0.5, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &mc.Config{
		Model:    model,
		Gate:     gate,
		PathHist: &mc.HistSpec{Min: 0, Max: 400, Bins: 100},
	}
	tally, err := mc.Run(cfg, 30000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tally.DetectedCount == 0 {
		t.Fatal("no detections")
	}
	// Every detected photon's arrival time must be inside the window.
	tp := FromPathHistogram(tally.PathHist, 1.4)
	if frac := tp.WindowFraction(0, 0.5); frac < 0.999 {
		t.Fatalf("%.1f%% of gated photons outside the time window", 100*(1-frac))
	}
	// Mean detected time consistent with mean pathlength.
	meanT := TimeFromGeometricPath(tally.PathStats.Mean(), 1.4)
	if math.Abs(meanT-tp.MeanTime()) > 0.05 {
		t.Fatalf("mean time %g ns vs TPSF mean %g ns", meanT, tp.MeanTime())
	}
}
