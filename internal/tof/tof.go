// Package tof converts between photon pathlengths and times of flight.
// The paper's pathlength gating models a pulsed source/detector pair that
// only operates between pulses; experimentally the gate is temporal, so
// this package maps time windows (ns) onto the kernel's pathlength gates
// (mm) and turns detected-pathlength histograms into temporal point spread
// functions (TPSFs).
package tof

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/stats"
)

// C0 is the vacuum speed of light in mm/ns.
const C0 = 299.792458

// TimeFromOpticalPath converts an optical pathlength Σn·ds (mm) to a time
// of flight in ns; the refractive index is already inside the optical path.
func TimeFromOpticalPath(optPathMM float64) float64 { return optPathMM / C0 }

// TimeFromGeometricPath converts a geometric pathlength (mm) in a medium of
// uniform refractive index n to a time of flight in ns.
func TimeFromGeometricPath(pathMM, n float64) float64 { return pathMM * n / C0 }

// PathFromTime converts a time of flight (ns) to the geometric pathlength
// (mm) travelled in a medium of uniform index n.
func PathFromTime(tNs, n float64) float64 { return tNs * C0 / n }

// GateFromTimeWindow converts a temporal gate [tMin, tMax] ns into the
// kernel's geometric pathlength gate for a medium of uniform refractive
// index n. tMax = 0 leaves the upper bound open. It returns an error for a
// non-physical window.
func GateFromTimeWindow(tMinNs, tMaxNs, n float64) (detector.Gate, error) {
	if n < 1 {
		return detector.Gate{}, fmt.Errorf("tof: refractive index %g below 1", n)
	}
	if tMinNs < 0 || tMaxNs < 0 {
		return detector.Gate{}, fmt.Errorf("tof: negative time bound [%g,%g]", tMinNs, tMaxNs)
	}
	if tMaxNs != 0 && tMinNs > tMaxNs {
		return detector.Gate{}, fmt.Errorf("tof: window min %g ns exceeds max %g ns", tMinNs, tMaxNs)
	}
	g := detector.Gate{MinPath: PathFromTime(tMinNs, n)}
	if tMaxNs > 0 {
		g.MaxPath = PathFromTime(tMaxNs, n)
	}
	return g, nil
}

// TPSF is a temporal point spread function: the arrival-time distribution
// of detected photons.
type TPSF struct {
	// TimesNs are bin-centre arrival times.
	TimesNs []float64
	// Weights are the detected weights per bin.
	Weights []float64
}

// FromPathHistogram converts a detected geometric-pathlength histogram
// (mm) into a TPSF for a medium of uniform refractive index n.
func FromPathHistogram(h *stats.Histogram, n float64) *TPSF {
	if h == nil {
		return nil
	}
	t := &TPSF{
		TimesNs: make([]float64, len(h.Counts)),
		Weights: make([]float64, len(h.Counts)),
	}
	for i, w := range h.Counts {
		t.TimesNs[i] = TimeFromGeometricPath(h.BinCenter(i), n)
		t.Weights[i] = w
	}
	return t
}

// Total returns the integrated detected weight.
func (t *TPSF) Total() float64 {
	sum := 0.0
	for _, w := range t.Weights {
		sum += w
	}
	return sum
}

// MeanTime returns the intensity-weighted mean arrival time in ns — the
// first TPSF moment, proportional to the mean pathlength NIRS uses for
// quantification.
func (t *TPSF) MeanTime() float64 {
	sumW, sumWT := 0.0, 0.0
	for i, w := range t.Weights {
		sumW += w
		sumWT += w * t.TimesNs[i]
	}
	if sumW == 0 {
		return 0
	}
	return sumWT / sumW
}

// PeakTime returns the arrival time of the TPSF maximum.
func (t *TPSF) PeakTime() float64 {
	best, bestT := -1.0, 0.0
	for i, w := range t.Weights {
		if w > best {
			best, bestT = w, t.TimesNs[i]
		}
	}
	return bestT
}

// WindowFraction returns the fraction of the detected weight arriving
// inside [tMin, tMax] ns.
func (t *TPSF) WindowFraction(tMinNs, tMaxNs float64) float64 {
	total, in := 0.0, 0.0
	for i, w := range t.Weights {
		total += w
		if t.TimesNs[i] >= tMinNs && t.TimesNs[i] <= tMaxNs {
			in += w
		}
	}
	if total == 0 {
		return 0
	}
	return in / total
}
