// Package wal is an append-only, segmented, CRC32C-framed write-ahead
// log: the durability substrate under the service registry's job
// journal. Records are opaque (type byte + payload) — the schema lives
// in the journal layer — and the log's own guarantees are narrow and
// mechanical:
//
//   - An Append is atomic-on-replay: a record either survives whole
//     (length and checksum verify) or is truncated away with the torn
//     tail. Frames are written with a single write call, so an
//     in-process crash tears at most the last frame.
//   - Durability is governed by the fsync policy: "always" syncs every
//     append, "interval" (the default) amortizes syncs onto the append
//     that crosses a deadline, "none" leaves it to the OS. A SIGKILL
//     loses nothing under any policy — the page cache survives process
//     death — so the policy only prices power loss and kernel panics.
//   - The log rotates to a new segment when the current one fills, and
//     Compact atomically replaces all segments with a caller-provided
//     record set (the journal's snapshots). A crash between writing the
//     compacted segment and unlinking its predecessors leaves both on
//     disk; replay order makes that harmless, because compacted records
//     sort after — and therefore supersede — everything they summarize.
//
// Open replays every segment in sequence order, tolerating a torn tail
// (truncate at the first bad frame, count it, keep going) and gapped or
// empty segments, then arms the last segment for appending.
package wal

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// FsyncPolicy says when Append calls fsync.
type FsyncPolicy int

const (
	// FsyncInterval (default) fsyncs at most once per FsyncInterval,
	// amortized onto the append that crosses the deadline. The window of
	// exposure to power loss is one interval; a process kill loses
	// nothing.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs every append before it returns.
	FsyncAlways
	// FsyncNone never fsyncs on append (Sync, rotation sealing and
	// compaction still do): durability rides entirely on the OS.
	FsyncNone
)

// ParseFsyncPolicy maps the flag spelling to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "interval", "":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or none)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	default:
		return "interval"
	}
}

// Defaults for zero-valued Options fields.
const (
	DefaultSegmentBytes  = 8 << 20
	DefaultFsyncInterval = 100 * time.Millisecond
)

// Options configure Open.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentBytes rotates to a new segment once the current one exceeds
	// it; 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// Fsync picks the append durability policy.
	Fsync FsyncPolicy
	// FsyncInterval is the amortization window under FsyncInterval; 0
	// means DefaultFsyncInterval.
	FsyncInterval time.Duration
	// Obs receives the wal_* metrics; nil instruments a private registry.
	Obs *obs.Registry
	// Logger, if set, receives torn-tail and compaction logging.
	Logger *slog.Logger
}

// Replay is what Open recovered from disk.
type Replay struct {
	// Records are every intact record across all segments, in append
	// order.
	Records []Record
	// Segments is how many segment files were scanned.
	Segments int
	// TornTruncations counts segments that ended in a torn or corrupt
	// frame (the tail segment is physically truncated to its clean
	// prefix; earlier segments just have the garbage ignored).
	TornTruncations int
	// Bytes is the total clean-prefix byte count replayed.
	Bytes int64
}

type walMetrics struct {
	appends      *obs.Counter
	appendErrors *obs.Counter
	bytes        *obs.Counter
	fsyncSec     *obs.Histogram
	replayRecs   *obs.Counter
	tornTruncs   *obs.Counter
	rotations    *obs.Counter
	compactions  *obs.Counter
}

func newWalMetrics(reg *obs.Registry) *walMetrics {
	return &walMetrics{
		appends:      reg.Counter("wal_appends_total", "Records appended to the write-ahead log."),
		appendErrors: reg.Counter("wal_append_errors_total", "Append or rotation failures (the record may not be durable)."),
		bytes:        reg.Counter("wal_bytes_total", "Bytes appended to the write-ahead log."),
		fsyncSec:     reg.Histogram("wal_fsync_seconds", "Latency of WAL fsync calls.", obs.DefBuckets),
		replayRecs:   reg.Counter("wal_replay_records_total", "Intact records recovered by replay at open."),
		tornTruncs:   reg.Counter("wal_torn_tail_truncations_total", "Segments whose tail was torn or corrupt at open."),
		rotations:    reg.Counter("wal_rotations_total", "Segment rotations."),
		compactions:  reg.Counter("wal_compactions_total", "Snapshot-based compactions."),
	}
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends are serialized internally.
type Log struct {
	opts Options
	log  *slog.Logger
	met  *walMetrics

	mu       sync.Mutex
	f        *os.File // current append segment
	seq      uint64   // its sequence number
	size     int64    // its byte length
	total    int64    // clean bytes across all live segments
	lastSync time.Time
	dirty    bool
	closed   bool
}

func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.opts.Dir, fmt.Sprintf("wal-%016d.log", seq))
}

// segments lists existing segment sequence numbers in replay order.
func (l *Log) segments() ([]uint64, error) {
	names, err := filepath.Glob(filepath.Join(l.opts.Dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	seqs := make([]uint64, 0, len(names))
	for _, name := range names {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(name), "wal-%d.log", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Open replays the log in dir (creating it if absent) and arms it for
// appending. The returned Replay holds every intact record in append
// order; the caller folds them into its own state.
func Open(opts Options) (*Log, *Replay, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: no directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if opts.Logger == nil {
		opts.Logger = obs.NopLogger()
	}
	oreg := opts.Obs
	if oreg == nil {
		oreg = obs.NewRegistry()
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	l := &Log{opts: opts, log: opts.Logger, met: newWalMetrics(oreg)}
	// A temp file left by a compaction that died before its rename is
	// dead weight (its seq was never committed); clear it.
	if stale, err := filepath.Glob(filepath.Join(opts.Dir, "wal-*.log.tmp")); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}
	seqs, err := l.segments()
	if err != nil {
		return nil, nil, err
	}
	rep := &Replay{Segments: len(seqs)}
	for i, seq := range seqs {
		path := l.segPath(seq)
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		clean := scanFrames(buf, func(rec Record) {
			rep.Records = append(rep.Records, rec)
		})
		if clean < len(buf) {
			rep.TornTruncations++
			l.met.tornTruncs.Inc()
			l.log.Warn("wal: torn segment tail", "segment", filepath.Base(path), "clean", clean, "size", len(buf))
			if i == len(seqs)-1 {
				// Physically truncate the tail segment so appends resume
				// on a clean frame boundary. Earlier segments are sealed
				// (never appended to again); ignoring their garbage is
				// enough.
				if err := os.Truncate(path, int64(clean)); err != nil {
					return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
				}
			}
		}
		rep.Bytes += int64(clean)
		l.total += int64(clean)
	}
	l.met.replayRecs.Add(uint64(len(rep.Records)))
	if len(seqs) == 0 {
		l.seq = 1
		if err := l.createSegmentLocked(false); err != nil {
			return nil, nil, err
		}
	} else {
		last := seqs[len(seqs)-1]
		f, err := os.OpenFile(l.segPath(last), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		l.f, l.seq, l.size = f, last, st.Size()
	}
	l.lastSync = time.Now()
	return l, rep, nil
}

// createSegmentLocked opens a fresh segment file for l.seq and makes its
// directory entry durable. rotation distinguishes a mid-run rotation
// (which carries the crashpoint) from the initial segment at Open.
func (l *Log) createSegmentLocked(rotation bool) error {
	f, err := os.OpenFile(l.segPath(l.seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if rotation {
		// The new segment file exists but its directory entry may not be
		// durable, and the old segment is sealed: the moment a crash
		// leaves an empty or missing trailing segment behind.
		fault.Crash("wal.mid-rotation")
	}
	if err := SyncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.size = f, 0
	return nil
}

// rotateLocked seals the current segment (fsync + close — a sealed
// segment is never written again, so it is made durable regardless of
// policy) and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.seq++
	if err := l.createSegmentLocked(true); err != nil {
		return err
	}
	l.met.rotations.Inc()
	return nil
}

// Append frames the record and writes it to the log, rotating first if
// the current segment is full, then applies the fsync policy. On return
// with a nil error the record is at least process-crash-durable; whether
// it is power-loss-durable is the policy's call.
func (l *Log) Append(t RecordType, data []byte) error {
	frame := encodeFrame(Record{Type: t, Data: data})
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.size > 0 && l.size+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.met.appendErrors.Inc()
			return fmt.Errorf("wal: rotate: %w", err)
		}
	}
	if fault.Take("wal.mid-append") {
		// Stage the damage before dying: half a frame reaches the file,
		// the torn tail replay must absorb.
		l.f.Write(frame[:len(frame)/2])
		fault.Kill("wal.mid-append")
	}
	n, err := l.f.Write(frame)
	if err != nil {
		// A short write leaves a torn frame; replay truncates it away, so
		// the failed record is consistently absent rather than half-there.
		l.met.appendErrors.Inc()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(n)
	l.total += int64(n)
	l.dirty = true
	l.met.appends.Inc()
	l.met.bytes.Add(uint64(n))
	fault.Crash("wal.post-append")
	return l.maybeSyncLocked()
}

func (l *Log) maybeSyncLocked() error {
	switch l.opts.Fsync {
	case FsyncNone:
		return nil
	case FsyncInterval:
		if time.Since(l.lastSync) < l.opts.FsyncInterval {
			return nil
		}
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.met.fsyncSec.Observe(time.Since(start).Seconds())
	l.lastSync = time.Now()
	l.dirty = false
	return nil
}

// Sync forces an fsync of the current segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// Size returns the total clean bytes across live segments — the
// journal's compaction trigger.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Compact atomically replaces the entire log with the given record set
// (the journal's per-job snapshots). The compacted records land in a
// fresh segment numbered after every existing one, written crash-durably
// via AtomicReplace before the predecessors are unlinked: a crash in
// between leaves old and new segments coexisting, which replay resolves
// by order — the compacted records come last and supersede what they
// summarize, so replaying (old + compacted) equals replaying compacted
// alone. Appending continues into the compacted segment.
func (l *Log) Compact(records []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	old, err := l.segments()
	if err != nil {
		return err
	}
	newSeq := l.seq + 1
	path := l.segPath(newSeq)
	var nbytes int64
	err = AtomicReplace(path, func(f *os.File) error {
		for _, rec := range records {
			frame := encodeFrame(rec)
			if _, err := f.Write(frame); err != nil {
				return err
			}
			nbytes += int64(len(frame))
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	// The compacted segment is durable; its predecessors still exist. A
	// crash here is the double-replay case the idempotence test covers.
	fault.Crash("wal.mid-compaction")
	l.f.Close()
	for _, seq := range old {
		if seq < newSeq {
			os.Remove(l.segPath(seq))
		}
	}
	if err := SyncDir(l.opts.Dir); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen compacted segment: %w", err)
	}
	l.f, l.seq, l.size, l.total = f, newSeq, nbytes, nbytes
	l.dirty = false
	l.met.compactions.Inc()
	l.log.Info("wal: compacted", "records", len(records), "bytes", nbytes, "retired", len(old))
	return nil
}

// Close syncs and closes the log. Further appends fail. Close is
// idempotent: the SIGTERM drain and a failover teardown can both close
// the same log, and every call after the first is a no-op returning nil
// — never an error on the already-closed descriptor.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.syncLocked(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
