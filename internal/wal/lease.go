//go:build unix

package wal

import (
	"fmt"
	"os"
	"syscall"
)

// Lease is an exclusive claim on a shard's journal directory, backed by
// flock(2) on a lease file. Exactly one process holds it at a time, and
// the arbitration is the kernel's: the lock dies with the holder's last
// open descriptor, so a SIGKILLed primary releases its lease the instant
// it dies — no TTL to tune, no heartbeat to miss, and none of the
// stat-then-steal races a mtime-freshness lease file invites (two
// standbys can both judge a lease stale and both "win"). A standby
// blocks in AcquireLease until the primary exits for any reason, then
// replays the journal and takes over the shard's key range.
//
// The one scope limit is the kernel itself: flock arbitrates within one
// machine (or one NFS server with working lock forwarding). That matches
// the failover design — a standby must share the primary's journal
// directory anyway, or it would have nothing to replay.
type Lease struct {
	f    *os.File
	path string
}

// AcquireLease claims the lease file at path, creating it if needed.
// With block=false it fails immediately when another process holds the
// lease; with block=true it waits for the holder to release or die. On
// success the file's content is overwritten with the holder's PID —
// informational only, for operators inspecting a wedged shard; the lock
// itself lives in the kernel, not in the bytes.
func AcquireLease(path string, block bool) (*Lease, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: lease %s: %w", path, err)
	}
	how := syscall.LOCK_EX
	if !block {
		how |= syscall.LOCK_NB
	}
	for {
		err = syscall.Flock(int(f.Fd()), how)
		if err != syscall.EINTR {
			break
		}
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: lease %s held by another process: %w", path, err)
	}
	f.Truncate(0)
	fmt.Fprintf(f, "%d\n", os.Getpid()) // best-effort holder breadcrumb
	return &Lease{f: f, path: path}, nil
}

// Path returns the lease file's path.
func (l *Lease) Path() string { return l.path }

// Release drops the lease so a waiting standby can acquire it. Idempotent
// and nil-safe; the file itself is left in place (it is the rendezvous
// point, not the lock).
func (l *Lease) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	return f.Close()
}
