package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// Frame layout, little-endian:
//
//	[4] payload length n (1 type byte + record data)
//	[4] CRC32C (Castagnoli) of the payload
//	[n] payload
//
// The checksum covers the payload only; a torn or bit-flipped header is
// caught by the length bound or by the CRC failing over whatever bytes
// the bogus length selects. Castagnoli rather than IEEE because it is
// the storage-stack convention (and hardware-accelerated via SSE4.2 /
// ARMv8 CRC instructions in the stdlib).
const (
	frameHeader = 8
	// MaxRecordBytes bounds a single record's payload. Nothing the journal
	// writes approaches it; its real job is rejecting garbage lengths when
	// scanning a corrupt segment, so a flipped bit in a length field
	// cannot send the scanner a gigabyte past the torn tail.
	MaxRecordBytes = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RecordType tags a journal record. The WAL itself treats the type as an
// opaque byte; the set below is the service-layer journal's schema.
type RecordType uint8

// Journal record kinds, in the order the control plane emits them over a
// job's life.
const (
	// RecJobAccepted marks a Submit that passed admission: the job spec,
	// durable before any chunk is handed out.
	RecJobAccepted RecordType = 1
	// RecChunksReduced records a batch of chunk ids folded into a job's
	// tally. Progress markers only: the folded tally itself is durable at
	// snapshots, and chunks are pure functions of (seed, stream, fan), so
	// replay recomputes anything past the last snapshot.
	RecChunksReduced RecordType = 2
	// RecSnapshot carries a job's full resumable state (spec, completed
	// chunk ids, partial tally) — the amortized "last known good" replay
	// starts from.
	RecSnapshot RecordType = 3
	// RecJobFinalized marks a job done; replay re-seeds the result cache
	// from its final snapshot instead of re-queueing it.
	RecJobFinalized RecordType = 4
	// RecJobCanceled marks a cancel; replay drops the job entirely.
	RecJobCanceled RecordType = 5
)

// Record is one framed journal entry.
type Record struct {
	Type RecordType
	Data []byte
}

// encodeFrame renders a record as one contiguous frame, written with a
// single Write call so an in-process crash tears at most one frame.
func encodeFrame(rec Record) []byte {
	n := 1 + len(rec.Data)
	frame := make([]byte, frameHeader+n)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(n))
	frame[frameHeader] = byte(rec.Type)
	copy(frame[frameHeader+1:], rec.Data)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(frame[frameHeader:], castagnoli))
	return frame
}

// scanFrames parses whole, checksum-valid frames from buf, invoking fn
// for each, and returns the clean prefix length. A short header, a
// zero/oversized length, a short payload or a CRC mismatch ends the scan:
// the torn-tail contract is "truncate at the first bad frame", never
// resync past corruption (a framing stream has no reliable resync point,
// and a record after a torn one may depend on state the tear lost).
func scanFrames(buf []byte, fn func(Record)) (clean int) {
	off := 0
	for {
		rest := buf[off:]
		if len(rest) < frameHeader {
			return off
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		if n < 1 || n > MaxRecordBytes || len(rest)-frameHeader < n {
			return off
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return off
		}
		if fn != nil {
			data := make([]byte, n-1)
			copy(data, payload[1:])
			fn(Record{Type: RecordType(payload[0]), Data: data})
		}
		off += frameHeader + n
	}
}
