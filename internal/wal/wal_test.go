package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func openT(t *testing.T, opts Options) (*Log, *Replay) {
	t.Helper()
	l, rep, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%+v): %v", opts, err)
	}
	return l, rep
}

func rec(i int) Record {
	return Record{Type: RecordType(1 + i%5), Data: []byte(fmt.Sprintf("record-%04d", i))}
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r := rec(i)
		if err := l.Append(r.Type, r.Data); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
}

func wantRecords(t *testing.T, got []Record, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, g := range got {
		w := rec(i)
		if g.Type != w.Type || !bytes.Equal(g.Data, w.Data) {
			t.Fatalf("record %d = {%d %q}, want {%d %q}", i, g.Type, g.Data, w.Type, w.Data)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rep := openT(t, Options{Dir: dir})
	if len(rep.Records) != 0 || rep.Segments != 0 {
		t.Fatalf("fresh log replayed %d records over %d segments", len(rep.Records), rep.Segments)
	}
	appendN(t, l, 100)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rep2 := openT(t, Options{Dir: dir})
	defer l2.Close()
	wantRecords(t, rep2.Records, 100)
	if rep2.TornTruncations != 0 {
		t.Fatalf("clean log reported %d torn truncations", rep2.TornTruncations)
	}
	// Appends continue after a reopen.
	if err := l2.Append(rec(100).Type, rec(100).Data); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Each framed record is 8 + 1 + 11 = 20 bytes; a 64-byte segment
	// rotates every 3 records.
	l, _ := openT(t, Options{Dir: dir, SegmentBytes: 64})
	appendN(t, l, 20)
	l.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("expected >= 3 segments after rotation, got %v (err %v)", segs, err)
	}
	l2, rep := openT(t, Options{Dir: dir, SegmentBytes: 64})
	defer l2.Close()
	wantRecords(t, rep.Records, 20)
	if rep.Segments != len(segs) {
		t.Fatalf("replay saw %d segments, glob %d", rep.Segments, len(segs))
	}
}

func TestCompactReplacesSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, SegmentBytes: 64})
	appendN(t, l, 50)
	before := l.Size()
	compacted := []Record{{Type: RecSnapshot, Data: []byte("the-snapshot")}}
	if err := l.Compact(compacted); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if after := l.Size(); after >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before, after)
	}
	// Appends continue into the compacted segment and survive a reopen.
	if err := l.Append(RecJobAccepted, []byte("post-compact")); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment after compaction, got %v", segs)
	}
	l2, rep := openT(t, Options{Dir: dir})
	defer l2.Close()
	if len(rep.Records) != 2 {
		t.Fatalf("replayed %d records, want 2 (snapshot + post-compact)", len(rep.Records))
	}
	if !bytes.Equal(rep.Records[0].Data, []byte("the-snapshot")) ||
		!bytes.Equal(rep.Records[1].Data, []byte("post-compact")) {
		t.Fatalf("unexpected records after compaction: %q %q",
			rep.Records[0].Data, rep.Records[1].Data)
	}
}

// TestCompactUsesAtomicReplace pins the compaction write path to the
// shared crash-durable helper (the same one Checkpoint.Save must use).
func TestCompactUsesAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	var replaced []string
	ReplaceHook = func(path string) { replaced = append(replaced, path) }
	defer func() { ReplaceHook = nil }()
	l, _ := openT(t, Options{Dir: dir})
	appendN(t, l, 5)
	if err := l.Compact([]Record{{Type: RecSnapshot, Data: []byte("s")}}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	defer l.Close()
	if len(replaced) != 1 {
		t.Fatalf("compaction used AtomicReplace %d times, want 1", len(replaced))
	}
	if filepath.Dir(replaced[0]) != dir {
		t.Fatalf("AtomicReplace target %q not in wal dir %q", replaced[0], dir)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNone} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			reg := obs.NewRegistry()
			l, _ := openT(t, Options{Dir: dir, Fsync: p, Obs: reg})
			appendN(t, l, 10)
			if err := l.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			l.Close()
			l2, rep := openT(t, Options{Dir: dir, Fsync: p})
			defer l2.Close()
			wantRecords(t, rep.Records, 10)
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "interval": FsyncInterval, "none": FsyncNone, "": FsyncInterval,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, _ := openT(t, Options{Dir: t.TempDir()})
	l.Close()
	if err := l.Append(RecJobAccepted, []byte("x")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// TestCloseIdempotent pins the failover/drain contract: the SIGTERM pass
// and a lease-handoff teardown may both close the same log, and every
// Close after the first must be a nil no-op, with appends still failing
// cleanly in between.
func TestCloseIdempotent(t *testing.T) {
	l, _ := openT(t, Options{Dir: t.TempDir()})
	appendN(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v (want nil no-op)", err)
	}
	if err := l.Append(RecJobAccepted, []byte("x")); err == nil {
		t.Fatal("append between closes succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close after failed append: %v", err)
	}
}

func TestMetricsAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, Fsync: FsyncAlways, Obs: reg})
	appendN(t, l, 7)
	l.Close()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"wal_appends_total 7",
		"wal_fsync_seconds_count",
		"wal_replay_records_total 0",
		"wal_torn_tail_truncations_total 0",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	// A reopen on a second registry counts the replayed records.
	reg2 := obs.NewRegistry()
	l2, _ := openT(t, Options{Dir: dir, Obs: reg2})
	defer l2.Close()
	buf.Reset()
	reg2.WriteText(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("wal_replay_records_total 7")) {
		t.Errorf("replay metrics missing: %s", buf.String())
	}
}

func TestAtomicReplaceWritesDurably(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	var hooked string
	ReplaceHook = func(p string) { hooked = p }
	defer func() { ReplaceHook = nil }()
	if err := AtomicReplace(path, func(f *os.File) error {
		_, err := f.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatalf("AtomicReplace: %v", err)
	}
	if hooked != path {
		t.Fatalf("ReplaceHook saw %q, want %q", hooked, path)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// A failing write leaves neither the target nor the temp file.
	path2 := filepath.Join(dir, "fail.bin")
	if err := AtomicReplace(path2, func(f *os.File) error {
		return fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("AtomicReplace swallowed the write error")
	}
	if _, err := os.Stat(path2); !os.IsNotExist(err) {
		t.Fatal("failed AtomicReplace committed the target")
	}
	if _, err := os.Stat(path2 + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("failed AtomicReplace left its temp file")
	}
}
