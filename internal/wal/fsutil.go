package wal

import (
	"os"
	"path/filepath"
)

// ReplaceHook, when non-nil, is invoked with the destination path after
// every successful AtomicReplace. Tests install it to assert that a write
// path really goes through the full fsync-then-rename-then-dir-sync
// sequence (both the WAL compaction and the distsys checkpoint save must).
// Never set outside tests.
var ReplaceHook func(path string)

// AtomicReplace writes path crash-durably: the content goes to a
// same-directory temp file, which is fsynced before being renamed over
// path, and the containing directory is fsynced after so the rename
// itself survives power loss. A bare write+rename — the classic bug —
// leaves a window where the rename is on disk but the bytes are not,
// serving a zero-length or torn file after a crash.
//
// write receives the open temp file and must not close it.
func AtomicReplace(path string, write func(f *os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := SyncDir(filepath.Dir(path)); err != nil {
		return err
	}
	if ReplaceHook != nil {
		ReplaceHook(path)
	}
	return nil
}

// SyncDir fsyncs a directory, making directory-entry mutations (create,
// rename, remove) in it durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
