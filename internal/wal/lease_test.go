//go:build unix

package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Two opens of the same lease file conflict even within one process:
// flock locks belong to the open file description, not the PID, so the
// in-process test exercises the same kernel arbitration a two-process
// failover does.
func TestLeaseExcludesSecondHolder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.lease")
	l1, err := AcquireLease(path, false)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := AcquireLease(path, false); err == nil {
		t.Fatal("second non-blocking acquire succeeded while lease held")
	}
	if err := l1.Release(); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := l1.Release(); err != nil {
		t.Fatalf("double release: %v (want nil no-op)", err)
	}
	l2, err := AcquireLease(path, false)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	l2.Release()
}

// A blocking standby must wake the moment the holder releases — the
// in-process stand-in for "the primary died and the kernel dropped its
// lock".
func TestLeaseBlockingHandoff(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.lease")
	l1, err := AcquireLease(path, false)
	if err != nil {
		t.Fatalf("primary acquire: %v", err)
	}
	got := make(chan *Lease, 1)
	go func() {
		l, err := AcquireLease(path, true)
		if err != nil {
			t.Errorf("standby acquire: %v", err)
		}
		got <- l
	}()
	select {
	case <-got:
		t.Fatal("standby acquired while primary held the lease")
	case <-time.After(100 * time.Millisecond):
	}
	l1.Release()
	select {
	case l2 := <-got:
		defer l2.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("standby never acquired after release")
	}
	// The breadcrumb is informational but should name this process.
	if b, err := os.ReadFile(path); err != nil || len(b) == 0 {
		t.Fatalf("lease file unreadable after handoff: %q, %v", b, err)
	}
}
