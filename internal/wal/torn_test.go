package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// lastSegment returns the path of the highest-sequence segment in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	last := segs[0]
	for _, s := range segs[1:] {
		if s > last {
			last = s
		}
	}
	return last
}

// buildLog writes n records into a fresh dir and closes the log.
func buildLog(t *testing.T, dir string, n int, segBytes int64) {
	t.Helper()
	l, _ := openT(t, Options{Dir: dir, SegmentBytes: segBytes})
	appendN(t, l, n)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// copyDir clones every segment file from src into a fresh temp dir.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	segs, _ := filepath.Glob(filepath.Join(src, "wal-*.log"))
	for _, s := range segs {
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatalf("read %s: %v", s, err)
		}
		if err := os.WriteFile(filepath.Join(dst, filepath.Base(s)), data, 0o644); err != nil {
			t.Fatalf("write clone: %v", err)
		}
	}
	return dst
}

// TestTornTailEveryByteOffset is the property test of the torn-tail
// contract: truncating the log inside the last frame, at every byte
// offset, must replay all records but the last, count one truncation,
// and leave the log appendable.
func TestTornTailEveryByteOffset(t *testing.T) {
	const n = 8
	src := t.TempDir()
	buildLog(t, src, n, 0)
	seg := lastSegment(t, src)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := frameHeader + 1 + len(rec(n-1).Data)
	cleanPrefix := len(full) - lastFrame
	for cut := cleanPrefix + 1; cut < len(full); cut++ {
		dir := copyDir(t, src)
		segc := lastSegment(t, dir)
		if err := os.Truncate(segc, int64(cut)); err != nil {
			t.Fatal(err)
		}
		l, rep, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if len(rep.Records) != n-1 {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(rep.Records), n-1)
		}
		if rep.TornTruncations != 1 {
			t.Fatalf("cut=%d: %d truncations, want 1", cut, rep.TornTruncations)
		}
		// The file must be physically truncated to the clean prefix and
		// the log appendable on a clean frame boundary.
		if st, _ := os.Stat(segc); st.Size() != int64(cleanPrefix) {
			t.Fatalf("cut=%d: tail segment is %d bytes, want %d", cut, st.Size(), cleanPrefix)
		}
		last := rec(n - 1)
		if err := l.Append(last.Type, last.Data); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		l.Close()
		_, rep2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		wantRecords(t, rep2.Records, n)
	}
}

// TestBitFlipEveryByte flips one byte at every offset of a small log and
// asserts replay never panics, never errors, and yields an exact prefix
// of the original records (corruption truncates, never resyncs past).
func TestBitFlipEveryByte(t *testing.T) {
	const n = 6
	src := t.TempDir()
	buildLog(t, src, n, 0)
	seg := lastSegment(t, src)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(full); off++ {
		dir := t.TempDir()
		mut := bytes.Clone(full)
		mut[off] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rep, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("off=%d: Open: %v", off, err)
		}
		l.Close()
		if len(rep.Records) >= n {
			t.Fatalf("off=%d: corruption went undetected (%d records)", off, len(rep.Records))
		}
		wantRecords(t, rep.Records, len(rep.Records)) // prefix property
		if rep.TornTruncations != 1 {
			t.Fatalf("off=%d: %d truncations, want 1", off, rep.TornTruncations)
		}
	}
}

// TestEmptyAndMissingSegments: a crash mid-rotation leaves an empty
// trailing segment; retention tooling or a crash mid-compaction can
// leave sequence gaps. Replay tolerates both.
func TestEmptyAndMissingSegments(t *testing.T) {
	dir := t.TempDir()
	buildLog(t, dir, 9, 64) // ~20B frames, 3 per segment
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Gap: remove a middle segment (its 3 records vanish, the rest stay).
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	// Empty trailing segment, as a died-mid-rotation boot would leave.
	if err := os.WriteFile(filepath.Join(dir, "wal-9999999999999999.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rep, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if want := 9 - 3; len(rep.Records) != want {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), want)
	}
	if rep.TornTruncations != 0 {
		t.Fatalf("gap/empty segments are not torn tails: %d truncations", rep.TornTruncations)
	}
	// The empty trailing segment is the append target; writes go through.
	if err := l.Append(RecJobAccepted, []byte("after-gap")); err != nil {
		t.Fatalf("append: %v", err)
	}
	l.Close()
	_, rep2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep2.Records); got != 7 {
		t.Fatalf("reopen replayed %d records, want 7", got)
	}
}

// TestCompactionCrashDoubleReplay reconstructs the mid-compaction crash
// state — compacted segment written, predecessors not yet unlinked — and
// asserts replaying (old + compacted) appends the compacted records
// last, so a fold where later records supersede earlier ones lands in
// exactly the state of replaying the compacted log alone. Double replay
// of the duplicated history must be idempotent.
func TestCompactionCrashDoubleReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, SegmentBytes: 64})
	appendN(t, l, 10)
	// Preserve the pre-compaction segments, compact, then restore them
	// alongside the compacted segment: the exact on-disk state of a crash
	// at the wal.mid-compaction crashpoint.
	saved := map[string][]byte{}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	for _, s := range segs {
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		saved[filepath.Base(s)] = data
	}
	snap := Record{Type: RecSnapshot, Data: []byte("compacted-state")}
	if err := l.Compact([]Record{snap}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	l.Close()
	for name, data := range saved {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, rep, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open after simulated crash: %v", err)
	}
	if want := 10 + 1; len(rep.Records) != want {
		t.Fatalf("replayed %d records, want %d (old history + compacted)", len(rep.Records), want)
	}
	// Supersession: the compacted snapshot must be the FINAL record, so
	// any last-write-wins fold ends in the compacted state.
	lastRec := rep.Records[len(rep.Records)-1]
	if lastRec.Type != RecSnapshot || !bytes.Equal(lastRec.Data, snap.Data) {
		t.Fatalf("compacted record not last: {%d %q}", lastRec.Type, lastRec.Data)
	}
	wantRecords(t, rep.Records[:10], 10) // old history replays intact, in order
}

// TestOpenCleansStaleCompactionTemp: a compaction that died before its
// rename leaves wal-*.log.tmp, which must not be replayed and must be
// removed at open.
func TestOpenCleansStaleCompactionTemp(t *testing.T) {
	dir := t.TempDir()
	buildLog(t, dir, 3, 0)
	stale := filepath.Join(dir, fmt.Sprintf("wal-%016d.log.tmp", 99))
	if err := os.WriteFile(stale, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rep, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	wantRecords(t, rep.Records, 3)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale compaction temp survived Open")
	}
}
