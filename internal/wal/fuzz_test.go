package wal

import (
	"bytes"
	"testing"
)

// FuzzScanFrames fuzzes the record decoder over arbitrary segment bytes.
// Invariants: never panic, the clean prefix is in bounds, rescanning the
// clean prefix reproduces the same records (decode is deterministic and
// self-delimiting), and re-encoding those records reproduces the prefix
// bytes exactly (the codec round-trips).
func FuzzScanFrames(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))
	one := encodeFrame(Record{Type: RecJobAccepted, Data: []byte("job-spec-bytes")})
	f.Add(one)
	two := append(bytes.Clone(one), encodeFrame(Record{Type: RecSnapshot, Data: []byte("tally")})...)
	f.Add(two)
	f.Add(two[:len(two)-3]) // torn tail
	flipped := bytes.Clone(two)
	flipped[13] ^= 0xff
	f.Add(flipped) // corrupt first frame
	f.Add(encodeFrame(Record{Type: 200, Data: nil}))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // absurd length, no payload

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		clean := scanFrames(data, func(r Record) { recs = append(recs, r) })
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean prefix %d out of bounds [0,%d]", clean, len(data))
		}
		var again []Record
		if got := scanFrames(data[:clean], func(r Record) { again = append(again, r) }); got != clean {
			t.Fatalf("rescan of clean prefix consumed %d bytes, want %d", got, clean)
		}
		if len(again) != len(recs) {
			t.Fatalf("rescan decoded %d records, first scan %d", len(again), len(recs))
		}
		var reenc []byte
		for i, r := range recs {
			if a := again[i]; a.Type != r.Type || !bytes.Equal(a.Data, r.Data) {
				t.Fatalf("record %d differs across scans", i)
			}
			reenc = append(reenc, encodeFrame(r)...)
		}
		if !bytes.Equal(reenc, data[:clean]) {
			t.Fatalf("re-encoding %d records does not reproduce the clean prefix", len(recs))
		}
	})
}
