//go:build !unix

package wal

import "fmt"

// Lease requires flock(2); shard failover is unix-only.
type Lease struct{ path string }

// AcquireLease is unsupported off unix: the shard-failover design leans
// on the kernel releasing flock locks when the holder dies.
func AcquireLease(path string, block bool) (*Lease, error) {
	return nil, fmt.Errorf("wal: lease %s: flock-based leases are unix-only", path)
}

// Path returns the lease file's path.
func (l *Lease) Path() string { return l.path }

// Release is a no-op on the stub.
func (l *Lease) Release() error { return nil }
