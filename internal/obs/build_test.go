package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

// TestBuildIdentityMetrics: every debug surface must expose who it is
// (mc_build_info with the -X-injected version and the Go toolchain) and
// how long it has been up.
func TestBuildIdentityMetrics(t *testing.T) {
	r := NewRegistry()
	mux := http.NewServeMux()
	RegisterDebug(mux, r, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"mc_build_info{",
		`version="` + Version + `"`,
		`goversion="` + runtime.Version() + `"`,
		"process_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The info series' value is the constant 1 (the convention that makes
	// it joinable in PromQL); uptime must be non-negative.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "mc_build_info{") && !strings.HasSuffix(line, " 1") {
			t.Fatalf("build info series not constant 1: %q", line)
		}
	}
}
