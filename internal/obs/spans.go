package obs

import "time"

// Span is one chunk's cross-process timing breakdown, joined from
// server-side stamps (grant, flush arrival, reduce) and the
// worker-reported compute duration:
//
//	Queue   — chunk issued (or requeued) -> granted to a worker
//	Wire    — granted -> result arrival, minus compute: encode/decode,
//	          network, and any time the chunk sat in the worker's
//	          pre-reduction hold buffer
//	Compute — worker-reported kernel time for this chunk (server-inferred
//	          share of the batch when the worker reported none)
//	Reduce  — this chunk's share of merging its batch into the job tally
//
// Durations, not absolute pairs, so a span stays meaningful across the
// two clocks involved (queue/wire/reduce are server-clock, compute is
// worker-clock).
type Span struct {
	Chunk   int
	Worker  string
	Granted time.Time // server clock; orders spans and anchors the record
	Queue   time.Duration
	Wire    time.Duration
	Compute time.Duration
	Reduce  time.Duration
}

// Spans is a bounded ring of per-chunk spans (see ring for the
// overwrite-oldest and grow-toward-cap semantics). A nil *Spans drops
// everything (span recording disabled).
type Spans struct {
	ring ring[Span]
}

// DefaultSpanEvents is the per-job span ring capacity when the operator
// names none.
const DefaultSpanEvents = 512

// NewSpans returns a ring holding up to capacity spans (<= 0 means
// DefaultSpanEvents).
func NewSpans(capacity int) *Spans {
	if capacity <= 0 {
		capacity = DefaultSpanEvents
	}
	return &Spans{ring: ring[Span]{cap: capacity}}
}

// Record appends a span, overwriting the oldest when full.
func (s *Spans) Record(sp Span) {
	if s == nil {
		return
	}
	s.ring.record(sp)
}

// Snapshot returns the retained spans in insertion order and how many
// older spans the ring has overwritten.
func (s *Spans) Snapshot() (spans []Span, dropped uint64) {
	if s == nil {
		return nil, 0
	}
	return s.ring.snapshot()
}
