package obs

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func wantLine(t *testing.T, text, line string) {
	t.Helper()
	for _, l := range strings.Split(text, "\n") {
		if l == line {
			return
		}
	}
	t.Fatalf("exposition missing line %q in:\n%s", line, text)
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs ever submitted.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("queue_depth", "Chunks awaiting assignment.")
	g.Set(7)
	g.Add(-2)
	v := r.CounterVec("frames_total", "Frames by type.", "dir", "type")
	v.With("send", "hello").Add(3)
	v.With("recv", "welcome").Inc()

	text := scrape(t, r)
	wantLine(t, text, "# HELP jobs_total Jobs ever submitted.")
	wantLine(t, text, "# TYPE jobs_total counter")
	wantLine(t, text, "jobs_total 42")
	wantLine(t, text, "queue_depth 5")
	wantLine(t, text, `frames_total{dir="send",type="hello"} 3`)
	wantLine(t, text, `frames_total{dir="recv",type="welcome"} 1`)
}

// TestVecChildIdentity pins the hot-path contract: With on equal label
// values returns the same child, and re-registering a family is
// idempotent — wiring code may run once per connection.
func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v1 := r.CounterVec("x_total", "x", "k")
	v2 := r.CounterVec("x_total", "x", "k")
	if v1.With("a") != v2.With("a") {
		t.Fatal("same label value resolved to different children")
	}
	v1.With("a").Inc()
	v2.With("a").Inc()
	wantLine(t, scrape(t, r), `x_total{k="a"} 2`)
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "m")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "m")
}

func TestHistogramBucketMismatchPanics(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h_seconds", "h", []float64{1, 2})
	if h2 := r.Histogram("h_seconds", "h", []float64{1, 2}); h2 != h1 {
		t.Fatal("same buckets resolved to a different histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a histogram with different buckets did not panic")
		}
	}()
	r.Histogram("h_seconds", "h", []float64{1, 2, 4})
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "line1\nline2 with \\ backslash", "path").
		With("a\"b\\c\nd").Inc()
	text := scrape(t, r)
	wantLine(t, text, `# HELP esc_total line1\nline2 with \\ backslash`)
	wantLine(t, text, `esc_total{path="a\"b\\c\nd"} 1`)
}

func TestSpecialFloatValues(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("nan_gauge", "n", func() float64 { return math.NaN() })
	r.GaugeFunc("posinf_gauge", "p", func() float64 { return math.Inf(1) })
	r.GaugeFunc("neginf_gauge", "m", func() float64 { return math.Inf(-1) })
	text := scrape(t, r)
	wantLine(t, text, "nan_gauge NaN")
	wantLine(t, text, "posinf_gauge +Inf")
	wantLine(t, text, "neginf_gauge -Inf")
}

func TestGaugeVecFunc(t *testing.T) {
	r := NewRegistry()
	r.GaugeVecFunc("jobs", "Jobs by state.", "state", func() map[string]float64 {
		return map[string]float64{"running": 2, "queued": 1}
	})
	text := scrape(t, r)
	wantLine(t, text, `jobs{state="queued"} 1`)
	wantLine(t, text, `jobs{state="running"} 2`)
	// Deterministic order: queued sorts before running.
	if strings.Index(text, `state="queued"`) > strings.Index(text, `state="running"`) {
		t.Fatal("vec func rows not sorted by label value")
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	text := scrape(t, r)
	// le buckets are cumulative; 0.1 falls in the le="0.1" bucket.
	wantLine(t, text, `lat_seconds_bucket{le="0.1"} 2`)
	wantLine(t, text, `lat_seconds_bucket{le="1"} 3`)
	wantLine(t, text, `lat_seconds_bucket{le="10"} 4`)
	wantLine(t, text, `lat_seconds_bucket{le="+Inf"} 5`)
	wantLine(t, text, "lat_seconds_count 5")
	if h.Sum() != 105.65 {
		t.Fatalf("sum %g, want 105.65", h.Sum())
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
}

func TestHistogramObserveConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "c", []float64{1})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if h.Count() != 4000 {
		t.Fatalf("count %d, want 4000", h.Count())
	}
	if math.Abs(h.Sum()-2000) > 1e-9 {
		t.Fatalf("sum %g, want 2000", h.Sum())
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 7; i++ {
		tr.Record(Event{Kind: EvChunkGranted, Chunk: i})
	}
	events, dropped := tr.Snapshot()
	if dropped != 3 {
		t.Fatalf("dropped %d, want 3", dropped)
	}
	if len(events) != 4 {
		t.Fatalf("retained %d, want 4", len(events))
	}
	for i, e := range events {
		if e.Chunk != i+3 {
			t.Fatalf("event %d has chunk %d, want %d (oldest overwritten first)", i, e.Chunk, i+3)
		}
		if e.Time.IsZero() {
			t.Fatal("event not timestamped")
		}
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Record(Event{Kind: EvSubmitted}) // must not panic
	events, dropped := tr.Snapshot()
	if events != nil || dropped != 0 {
		t.Fatal("nil trace should be empty")
	}
}

func TestTraceKeepsExplicitTime(t *testing.T) {
	tr := NewTrace(2)
	at := time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)
	tr.Record(Event{Kind: EvSubmitted, Time: at})
	events, _ := tr.Snapshot()
	if !events[0].Time.Equal(at) {
		t.Fatalf("explicit timestamp rewritten: %v", events[0].Time)
	}
}

func TestReadiness(t *testing.T) {
	ready := NewReadiness("listener", "resume")
	rec := httptest.NewRecorder()
	ready.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("unready probe returned %d, want 503", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "listener") || !strings.Contains(body, "resume") {
		t.Fatalf("unready body %q does not name the waiting conditions", body)
	}
	ready.Set("listener", true)
	ready.Set("resume", true)
	rec = httptest.NewRecorder()
	ready.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("ready probe returned %d, want 200", rec.Code)
	}
}

func TestDebugMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "u").Inc()
	mux := http.NewServeMux()
	RegisterDebug(mux, r, nil) // nil readiness: /readyz tracks liveness
	srv := httptest.NewServer(mux)
	defer srv.Close()
	for path, want := range map[string]int{
		"/metrics":            200,
		"/healthz":            200,
		"/readyz":             200,
		"/debug/pprof/symbol": 200,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1<<10)
		resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
		if path == "/metrics" && !strings.Contains(string(body), "up_total 1") {
			t.Fatalf("GET /metrics body missing series: %q", body)
		}
	}
}
