package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Readiness is a set of named readiness conditions; the /readyz probe is
// ready only when every condition has been set true. Conditions start
// false, so a daemon is unready until each startup stage (listener bound,
// checkpoint resume finished, session established) reports in.
type Readiness struct {
	mu    sync.Mutex
	conds map[string]bool
}

// NewReadiness returns a probe with the given conditions, all unready.
func NewReadiness(conds ...string) *Readiness {
	r := &Readiness{conds: make(map[string]bool, len(conds))}
	for _, c := range conds {
		r.conds[c] = false
	}
	return r
}

// Set marks one condition ready or unready (unknown names are added — a
// late subsystem can register itself by its first Set).
func (r *Readiness) Set(name string, ok bool) {
	r.mu.Lock()
	r.conds[name] = ok
	r.mu.Unlock()
}

// Ready reports overall readiness and the names of unready conditions.
func (r *Readiness) Ready() (bool, []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var waiting []string
	for name, ok := range r.conds {
		if !ok {
			waiting = append(waiting, name)
		}
	}
	sort.Strings(waiting)
	return len(waiting) == 0, waiting
}

// Handler returns the GET /readyz endpoint: 200 "ok" when ready, 503
// listing the unready conditions otherwise.
func (r *Readiness) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		ok, waiting := r.Ready()
		if ok {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		for _, name := range waiting {
			fmt.Fprintf(w, "waiting: %s\n", name)
		}
	})
}

// HealthHandler returns the GET /healthz liveness endpoint: 200 "ok"
// whenever the process can serve HTTP at all.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
}

// RegisterDebug mounts the shared debug surface on mux: GET /metrics
// (text exposition of reg), GET /healthz, GET /readyz (ready), and the
// net/http/pprof profiling endpoints under /debug/pprof/. A nil ready
// makes /readyz track liveness only.
//
// It also registers the process-identity series every daemon shares:
// mc_build_info{version,goversion} (constant 1, version from the
// link-time Version stamp) and process_uptime_seconds (seconds since this
// RegisterDebug call — daemons mount their debug surface at startup, so
// that is process start for practical purposes).
func RegisterDebug(mux *http.ServeMux, reg *Registry, ready *Readiness) {
	reg.GaugeVec("mc_build_info",
		"Build identity; constant 1 with version and Go toolchain labels.",
		"version", "goversion").With(Version, runtime.Version()).Set(1)
	start := time.Now()
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the process mounted its debug surface.",
		func() float64 { return time.Since(start).Seconds() })
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /healthz", HealthHandler())
	if ready != nil {
		mux.Handle("GET /readyz", ready.Handler())
	} else {
		mux.Handle("GET /readyz", HealthHandler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
