package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRingGrowThenWrap drives one ring across both regimes — geometric
// growth toward cap, then overwrite-oldest — and checks the retained
// window and the dropped counter agree at every step.
func TestRingGrowThenWrap(t *testing.T) {
	const capacity = 20
	r := &ring[int]{cap: capacity}
	for i := 0; i < 100; i++ {
		r.record(i)
		got, dropped := r.snapshot()
		wantLen, wantDropped := i+1, uint64(0)
		if i+1 > capacity {
			wantLen, wantDropped = capacity, uint64(i+1-capacity)
		}
		if len(got) != wantLen || dropped != wantDropped {
			t.Fatalf("after %d records: %d retained (want %d), %d dropped (want %d)",
				i+1, len(got), wantLen, dropped, wantDropped)
		}
		// The retained window is always the most recent entries, in order.
		for k, v := range got {
			if want := i + 1 - wantLen + k; v != want {
				t.Fatalf("after %d records: entry %d = %d, want %d", i+1, k, v, want)
			}
		}
	}
}

func TestRingSmallCapNeverOverallocates(t *testing.T) {
	r := &ring[int]{cap: 3}
	for i := 0; i < 10; i++ {
		r.record(i)
	}
	if len(r.buf) != 3 {
		t.Fatalf("backing array grew to %d for cap 3", len(r.buf))
	}
	got, dropped := r.snapshot()
	if len(got) != 3 || got[0] != 7 || got[2] != 9 || dropped != 7 {
		t.Fatalf("got %v, dropped %d", got, dropped)
	}
}

// TestTraceConcurrentRecordSnapshot hammers one Trace from writer and
// reader goroutines at once; under -race this is the data-race check for
// the ring the HTTP events handler reads while the reducer writes.
func TestTraceConcurrentRecordSnapshot(t *testing.T) {
	tr := NewTrace(64)
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Record(Event{Kind: EvChunkCompleted, Chunk: w*perWriter + i})
			}
		}(w)
	}
	var rg sync.WaitGroup
	for rdr := 0; rdr < 2; rdr++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				evs, dropped := tr.Snapshot()
				if len(evs)+int(dropped) > writers*perWriter {
					t.Errorf("snapshot accounts for %d events, only %d recorded",
						len(evs)+int(dropped), writers*perWriter)
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	evs, dropped := tr.Snapshot()
	if len(evs) != 64 || int(dropped) != writers*perWriter-64 {
		t.Fatalf("final state: %d retained, %d dropped", len(evs), dropped)
	}
}

func TestParseEventKind(t *testing.T) {
	for k := EvSubmitted; k <= EvCanceled; k++ {
		got, ok := ParseEventKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseEventKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseEventKind("no-such-kind"); ok {
		t.Fatal("ParseEventKind accepted garbage")
	}
	if _, ok := ParseEventKind(""); ok {
		t.Fatal("ParseEventKind accepted empty string")
	}
}

func TestSpansRingAndNilSafety(t *testing.T) {
	var nilSpans *Spans
	nilSpans.Record(Span{Chunk: 1}) // must not panic
	if sps, dropped := nilSpans.Snapshot(); sps != nil || dropped != 0 {
		t.Fatalf("nil Spans snapshot: %v, %d", sps, dropped)
	}

	s := NewSpans(4)
	base := time.Now()
	for i := 0; i < 6; i++ {
		s.Record(Span{Chunk: i, Worker: "w", Granted: base,
			Queue: time.Duration(i) * time.Millisecond})
	}
	sps, dropped := s.Snapshot()
	if len(sps) != 4 || dropped != 2 {
		t.Fatalf("got %d spans, %d dropped", len(sps), dropped)
	}
	if sps[0].Chunk != 2 || sps[3].Chunk != 5 {
		t.Fatalf("span window wrong: %+v", sps)
	}

	if NewSpans(0) == nil || NewSpans(-1) == nil {
		t.Fatal("NewSpans must default non-positive capacities")
	}
}
