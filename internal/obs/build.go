package obs

// Version is the build/version string every daemon exports (the
// mc_build_info metric, the worker's WorkerReport, mctop's footer). It is
// meant to be stamped at link time:
//
//	go build -ldflags "-X repro/internal/obs.Version=$(git describe --always --dirty)"
//
// and stays "dev" for plain `go build` / `go test` binaries.
var Version = "dev"
