package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the shared structured logger every daemon routes
// through: format is "text" (the default) or "json", and verbose lowers
// the level from Info to Debug — verbosity changes the level only, never
// the destination or format. Returns an error on an unknown format so a
// typo in -log-format fails fast instead of silently logging text.
func NewLogger(w io.Writer, format string, verbose bool) (*slog.Logger, error) {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default for
// library layers whose caller wired no logger.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
