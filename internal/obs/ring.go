package obs

import "sync"

// ring is the bounded buffer shared by the per-job lifecycle Trace and the
// per-chunk Spans: when full, the oldest entries are overwritten and
// counted as dropped, so recent history is always reconstructable at a
// fixed memory cost no matter how many entries churned through.
//
// The backing array grows geometrically toward cap instead of being
// preallocated: a short-lived job (the common case — the service-plane
// bench creates thousands per second) pays for the handful of entries it
// records, not for the full ring it never fills.
type ring[T any] struct {
	mu      sync.Mutex
	cap     int // maximum ring size; len(buf) grows toward it
	buf     []T
	start   int // index of the oldest entry
	n       int // live entries in the ring
	dropped uint64
}

// record appends one entry, overwriting the oldest when full.
func (r *ring[T]) record(v T) {
	r.mu.Lock()
	if r.n == len(r.buf) && len(r.buf) < r.cap {
		// Grow toward cap. The ring has never wrapped while it is still
		// growing (start stays 0 until the first overwrite), so a plain
		// copy preserves order.
		next := len(r.buf) * 2
		if next == 0 {
			next = 8
		}
		if next > r.cap {
			next = r.cap
		}
		grown := make([]T, next)
		copy(grown, r.buf)
		r.buf = grown
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = v
		r.n++
	} else {
		r.buf[r.start] = v
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	}
	r.mu.Unlock()
}

// snapshot returns the retained entries in insertion order and how many
// older entries the ring has overwritten.
func (r *ring[T]) snapshot() (entries []T, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries = make([]T, 0, r.n)
	for i := 0; i < r.n; i++ {
		entries = append(entries, r.buf[(r.start+i)%len(r.buf)])
	}
	return entries, r.dropped
}
