// Package obs is the service's observability plane: a dependency-free
// metrics library (atomic counters, gauges and histograms behind a
// registry with a Prometheus text-exposition /metrics handler), a bounded
// per-job lifecycle event trace, health/readiness probes with a pprof
// debug mux, and the shared log/slog setup every daemon routes through.
//
// The hot paths are single atomic operations: a Counter.Add is one
// atomic add, a Histogram.Observe is a bucket search plus three atomics,
// and label lookups are meant to be resolved once at wiring time (see
// CounterVec.With) so steady-state instrumentation never touches a map
// or a lock. Scrapes serialise under the registry lock, which is held
// only while formatting text.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (counters only go up; negative deltas are a caller bug and
// handled by the Gauge type instead).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution with a lock-free Observe:
// cumulative-at-scrape buckets, a CAS-accumulated float sum, and a count.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf bucket is implicit
	buckets []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-added
	count   atomic.Uint64
}

// DefBuckets are the default latency buckets in seconds.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// sort.SearchFloat64s returns the first bound >= v's insertion point;
	// bucket semantics are le (value <= bound).
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metric family kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric and its labeled children.
type family struct {
	name   string
	help   string
	kind   string
	labels []string

	mu       sync.Mutex
	children map[string]any // joined label values -> *Counter/*Gauge/*Histogram
	order    []string       // child keys in first-use order
	vals     map[string][]string

	fn      func() float64            // GaugeFunc
	vecFn   func() map[string]float64 // GaugeVecFunc (single label)
	buckets []float64                 // histogram bounds
}

func (f *family) child(values []string, make func() any) any {
	key := joinLabelValues(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m := make()
	f.children[key] = m
	f.order = append(f.order, key)
	f.vals[key] = append([]string(nil), values...)
	return m
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register returns the named family, creating it on first use. A name may
// be registered many times (wiring code runs once per connection or per
// subsystem), but always with the same kind and label names — a mismatch
// is a programming error and panics.
func (r *Registry) register(name, help, kind string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, was %v",
					name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, labels: labels,
		children: make(map[string]any),
		vals:     make(map[string][]string),
	}
	r.fams[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter returns the unlabeled counter with the given name, registering
// it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels; resolve children once with
// With and keep the returned *Counter for the hot path.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the natural shape for state that already lives behind another lock
// (queue depth, jobs by state) where mirroring every transition into a
// stored gauge would be a second source of truth.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil)
	f.fn = fn
}

// GaugeVecFunc registers a single-label gauge family computed at scrape
// time: fn returns label value -> gauge value.
func (r *Registry) GaugeVecFunc(name, help, label string, fn func() map[string]float64) {
	f := r.register(name, help, kindGauge, []string{label})
	f.vecFn = fn
}

// Histogram returns the unlabeled histogram with the given name. buckets
// are upper bounds in increasing order (nil means DefBuckets); the +Inf
// bucket is implicit. Like kind and label mismatches, re-registering with
// different buckets is a programming error and panics — the existing
// child keeps its original bounds, so silently accepting new ones would
// leave registration intent and exposition disagreeing.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, kindHistogram, nil)
	f.mu.Lock()
	if f.buckets == nil {
		f.buckets = append([]float64(nil), buckets...)
	} else if !equalBounds(f.buckets, buckets) {
		was := f.buckets
		f.mu.Unlock()
		panic(fmt.Sprintf("obs: histogram %q re-registered with buckets %v, was %v",
			name, buckets, was))
	}
	f.mu.Unlock()
	return f.child(nil, func() any {
		return &Histogram{
			bounds:  append([]float64(nil), buckets...),
			buckets: make([]atomic.Uint64, len(buckets)+1),
		}
	}).(*Histogram)
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// joinLabelValues builds the child cache key. Values are joined with an
// unlikely separator; correctness does not depend on it (collisions would
// merge two children, never corrupt memory).
func joinLabelValues(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	key := values[0]
	for _, v := range values[1:] {
		key += "\x1f" + v
	}
	return key
}
