package obs

import (
	"sync"
	"time"
)

// EventKind discriminates job lifecycle events.
type EventKind uint8

const (
	// EvSubmitted records a job entering the registry.
	EvSubmitted EventKind = iota + 1
	// EvCoalesced records an identical submission attaching to this job.
	EvCoalesced
	// EvCacheHit records a submission served from cache; Detail names the
	// index that hit ("exact" or "physics").
	EvCacheHit
	// EvResumed records a job restored from a checkpoint snapshot.
	EvResumed
	// EvChunkGranted records one chunk handed to a worker.
	EvChunkGranted
	// EvChunkCompleted records one chunk's tally reduced into the job.
	EvChunkCompleted
	// EvChunkReassigned records a chunk requeued after its owner timed
	// out, disconnected, or stopped advertising it (Detail says which).
	EvChunkReassigned
	// EvChunkRejected records a result the reducer refused — benign
	// stragglers after finalize included; Detail carries the reason.
	EvChunkRejected
	// EvEstimate records a precision-targeted job's re-estimate after a
	// merge; Value is the observable's relative standard error.
	EvEstimate
	// EvFinalized records the job finishing; Detail distinguishes
	// "complete", "target-met" and "budget-exhausted".
	EvFinalized
	// EvCanceled records the job being canceled.
	EvCanceled
)

// String implements fmt.Stringer (also the JSON spelling).
func (k EventKind) String() string {
	switch k {
	case EvSubmitted:
		return "submitted"
	case EvCoalesced:
		return "coalesced"
	case EvCacheHit:
		return "cache-hit"
	case EvResumed:
		return "resumed"
	case EvChunkGranted:
		return "chunk-granted"
	case EvChunkCompleted:
		return "chunk-completed"
	case EvChunkReassigned:
		return "chunk-reassigned"
	case EvChunkRejected:
		return "chunk-rejected"
	case EvEstimate:
		return "estimate"
	case EvFinalized:
		return "finalized"
	case EvCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Event is one entry of a job's lifecycle trace. Chunk is -1 for events
// that are not chunk-scoped.
type Event struct {
	Time   time.Time
	Kind   EventKind
	Chunk  int
	Worker string
	Detail string
	Value  float64
}

// Trace is a bounded ring of lifecycle events. When full, the oldest
// events are overwritten and counted as dropped — a job's recent history
// is always reconstructable at a fixed memory cost, no matter how many
// chunks it churned through. A nil *Trace drops everything (tracing
// disabled).
//
// The backing array grows geometrically toward cap instead of being
// preallocated: a short-lived job (the common case — the service-plane
// bench creates thousands per second) pays for the handful of events it
// records, not for the full ring it never fills.
type Trace struct {
	mu      sync.Mutex
	cap     int // maximum ring size; len(ring) grows toward it
	ring    []Event
	start   int // index of the oldest event
	n       int // live events in the ring
	dropped uint64
}

// DefaultTraceEvents is the per-job ring capacity when the operator names
// none.
const DefaultTraceEvents = 512

// NewTrace returns a ring holding up to capacity events (<= 0 means
// DefaultTraceEvents).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Trace{cap: capacity}
}

// Record appends an event, stamping it with the current time if unset.
func (t *Trace) Record(e Event) {
	if t == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	t.mu.Lock()
	if t.n == len(t.ring) && len(t.ring) < t.cap {
		// Grow toward cap. The ring has never wrapped while it is still
		// growing (start stays 0 until the first overwrite), so a plain
		// copy preserves order.
		next := len(t.ring) * 2
		if next == 0 {
			next = 8
		}
		if next > t.cap {
			next = t.cap
		}
		grown := make([]Event, next)
		copy(grown, t.ring)
		t.ring = grown
	}
	if t.n < len(t.ring) {
		t.ring[(t.start+t.n)%len(t.ring)] = e
		t.n++
	} else {
		t.ring[t.start] = e
		t.start = (t.start + 1) % len(t.ring)
		t.dropped++
	}
	t.mu.Unlock()
}

// Snapshot returns the retained events in chronological order and how
// many older events the ring has overwritten.
func (t *Trace) Snapshot() (events []Event, dropped uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	events = make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		events = append(events, t.ring[(t.start+i)%len(t.ring)])
	}
	return events, t.dropped
}
