package obs

import (
	"time"
)

// EventKind discriminates job lifecycle events.
type EventKind uint8

const (
	// EvSubmitted records a job entering the registry.
	EvSubmitted EventKind = iota + 1
	// EvCoalesced records an identical submission attaching to this job.
	EvCoalesced
	// EvCacheHit records a submission served from cache; Detail names the
	// index that hit ("exact" or "physics").
	EvCacheHit
	// EvResumed records a job restored from a checkpoint snapshot.
	EvResumed
	// EvChunkGranted records one chunk handed to a worker.
	EvChunkGranted
	// EvChunkCompleted records one chunk's tally reduced into the job.
	EvChunkCompleted
	// EvChunkReassigned records a chunk requeued after its owner timed
	// out, disconnected, or stopped advertising it (Detail says which).
	EvChunkReassigned
	// EvChunkRejected records a result the reducer refused — benign
	// stragglers after finalize included; Detail carries the reason.
	EvChunkRejected
	// EvEstimate records a precision-targeted job's re-estimate after a
	// merge; Value is the observable's relative standard error.
	EvEstimate
	// EvFinalized records the job finishing; Detail distinguishes
	// "complete", "target-met" and "budget-exhausted".
	EvFinalized
	// EvCanceled records the job being canceled.
	EvCanceled
)

// String implements fmt.Stringer (also the JSON spelling).
func (k EventKind) String() string {
	switch k {
	case EvSubmitted:
		return "submitted"
	case EvCoalesced:
		return "coalesced"
	case EvCacheHit:
		return "cache-hit"
	case EvResumed:
		return "resumed"
	case EvChunkGranted:
		return "chunk-granted"
	case EvChunkCompleted:
		return "chunk-completed"
	case EvChunkReassigned:
		return "chunk-reassigned"
	case EvChunkRejected:
		return "chunk-rejected"
	case EvEstimate:
		return "estimate"
	case EvFinalized:
		return "finalized"
	case EvCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// ParseEventKind maps the JSON spelling back to its EventKind (the inverse
// of String); ok is false for names no kind produces.
func ParseEventKind(s string) (k EventKind, ok bool) {
	for k := EvSubmitted; k <= EvCanceled; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Event is one entry of a job's lifecycle trace. Chunk is -1 for events
// that are not chunk-scoped.
type Event struct {
	Time   time.Time
	Kind   EventKind
	Chunk  int
	Worker string
	Detail string
	Value  float64
}

// Trace is a bounded ring of lifecycle events (see ring for the
// overwrite-oldest and grow-toward-cap semantics). A nil *Trace drops
// everything (tracing disabled).
type Trace struct {
	ring ring[Event]
}

// DefaultTraceEvents is the per-job ring capacity when the operator names
// none.
const DefaultTraceEvents = 512

// NewTrace returns a ring holding up to capacity events (<= 0 means
// DefaultTraceEvents).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Trace{ring: ring[Event]{cap: capacity}}
}

// Record appends an event, stamping it with the current time if unset.
func (t *Trace) Record(e Event) {
	if t == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	t.ring.record(e)
}

// Snapshot returns the retained events in chronological order and how
// many older events the ring has overwritten.
func (t *Trace) Snapshot() (events []Event, dropped uint64) {
	if t == nil {
		return nil, 0
	}
	return t.ring.snapshot()
}
