package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families in registration order,
// children sorted by label values so scrapes are deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

func (f *family) writeText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	if f.fn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.fn()))
		return err
	}
	if f.vecFn != nil {
		vals := f.vecFn()
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				f.name, labelString(f.labels, []string{k}), formatValue(vals[k])); err != nil {
				return err
			}
		}
		return nil
	}

	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]any, len(keys))
	labelVals := make([][]string, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
		labelVals[i] = f.vals[k]
	}
	f.mu.Unlock()
	sort.Sort(&bySortedLabels{keys, children, labelVals})

	for i, m := range children {
		labels := labelString(f.labels, labelVals[i])
		switch m := m.(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, m.Value()); err != nil {
				return err
			}
		case *Histogram:
			cum := uint64(0)
			for b := range m.buckets {
				cum += m.buckets[b].Load()
				le := "+Inf"
				if b < len(m.bounds) {
					le = formatValue(m.bounds[b])
				}
				bucketLabels := labelString(append(f.labels, "le"), append(labelVals[i], le))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketLabels, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labels, formatValue(m.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels, m.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// bySortedLabels sorts scrape rows by their child key for determinism.
type bySortedLabels struct {
	keys     []string
	children []any
	vals     [][]string
}

func (s *bySortedLabels) Len() int           { return len(s.keys) }
func (s *bySortedLabels) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *bySortedLabels) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.children[i], s.children[j] = s.children[j], s.children[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// labelString renders {k="v",...}; empty when there are no labels.
func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value: shortest round-trip float, with the
// exposition spellings of the specials (NaN, +Inf, -Inf).
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
