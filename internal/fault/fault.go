// Package fault provides env-armed deterministic crashpoints for crash
// testing the durability plane. A crashpoint is a named call site —
// fault.Crash("wal.post-append") — that is inert unless the process was
// started with MC_CRASHPOINT naming it, in which case the site kills the
// process with SIGKILL (not a panic, not os.Exit: recover, deferred
// flushes and signal handlers must all get no chance to tidy up, exactly
// as in an OOM kill or power cut).
//
// MC_CRASH_AFTER selects which hit fires (1-based, default 1), so a test
// can let a few appends succeed before the crash lands mid-run. The
// countdown is atomic: exactly one call fires even under concurrency.
//
// The production cost when disarmed is one string comparison against a
// package-level variable set once at init.
package fault

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
)

// Environment variables that arm a crashpoint.
const (
	// EnvPoint names the crashpoint to arm (empty means disarmed).
	EnvPoint = "MC_CRASHPOINT"
	// EnvAfter is the 1-based hit count at which the armed point fires;
	// unset, empty or unparsable means the first hit.
	EnvAfter = "MC_CRASH_AFTER"
)

var (
	armed     string
	remaining atomic.Int64
)

func init() {
	Arm(os.Getenv(EnvPoint), parseAfter(os.Getenv(EnvAfter)))
}

func parseAfter(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// Arm programmatically arms (or, with an empty point, disarms) a
// crashpoint; tests and harnesses use it instead of the environment.
// Not safe to call concurrently with Take.
func Arm(point string, after int) {
	armed = point
	if after < 1 {
		after = 1
	}
	remaining.Store(int64(after))
}

// Armed returns the armed crashpoint name, or "" when disarmed.
func Armed() string { return armed }

// Take reports whether the named crashpoint is armed and this call is the
// hit that should fire. It returns true exactly once per arming, letting
// a call site stage its own damage (say, a half-written frame) before
// calling Kill.
func Take(point string) bool {
	if armed != point || armed == "" {
		return false
	}
	return remaining.Add(-1) == 0
}

// Kill terminates the process with SIGKILL after a one-line stderr note
// (the only trace a crash test sees). It never returns.
func Kill(point string) {
	fmt.Fprintf(os.Stderr, "fault: crashing at %q\n", point)
	if p, err := os.FindProcess(os.Getpid()); err == nil {
		p.Kill()
	}
	// SIGKILL is delivered asynchronously and cannot be handled; block
	// until it lands rather than return into code that assumes survival.
	select {}
}

// Crash fires the named crashpoint if it is armed and due: the canonical
// one-liner placed at the nasty moments of the durability plane.
func Crash(point string) {
	if Take(point) {
		Kill(point)
	}
}
