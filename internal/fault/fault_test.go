package fault

import (
	"os"
	"os/exec"
	"testing"
)

func TestDisarmedTakeNeverFires(t *testing.T) {
	Arm("", 1)
	for i := 0; i < 3; i++ {
		if Take("wal.post-append") {
			t.Fatal("disarmed crashpoint fired")
		}
	}
}

func TestTakeFiresExactlyOnceAtCountdown(t *testing.T) {
	Arm("wal.post-append", 3)
	defer Arm("", 1)
	if Take("wal.mid-append") {
		t.Fatal("wrong point fired")
	}
	fires := 0
	for i := 0; i < 10; i++ {
		if Take("wal.post-append") {
			fires++
			if i != 2 {
				t.Fatalf("fired on hit %d, want hit 3", i+1)
			}
		}
	}
	if fires != 1 {
		t.Fatalf("fired %d times, want exactly 1", fires)
	}
}

func TestArmedReportsPoint(t *testing.T) {
	Arm("wal.mid-rotation", 1)
	defer Arm("", 1)
	if Armed() != "wal.mid-rotation" {
		t.Fatalf("Armed() = %q", Armed())
	}
}

// TestCrashKillsWithSigkill re-execs the test binary with the crashpoint
// armed via the environment (the production arming path) and asserts the
// child dies by SIGKILL — not a panic, not a clean exit.
func TestCrashKillsWithSigkill(t *testing.T) {
	if os.Getenv("FAULT_TEST_CHILD") == "1" {
		Crash("test.point") // armed via env: never returns
		os.Exit(0)          // unreachable if the harness works
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestCrashKillsWithSigkill")
	cmd.Env = append(os.Environ(),
		"FAULT_TEST_CHILD=1", EnvPoint+"=test.point", EnvAfter+"=1")
	err := cmd.Run()
	if err == nil {
		t.Fatal("armed child exited cleanly")
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("child failed oddly: %v", err)
	}
	// SIGKILL surfaces as exit status -1 with "signal: killed".
	if ee.ProcessState.ExitCode() != -1 || ee.ProcessState.String() != "signal: killed" {
		t.Fatalf("child died with %q, want SIGKILL", ee.ProcessState.String())
	}
}

// TestCrashAfterCountsInChild verifies MC_CRASH_AFTER lets earlier hits
// pass in a real armed process.
func TestCrashAfterCountsInChild(t *testing.T) {
	if os.Getenv("FAULT_TEST_CHILD2") == "1" {
		Crash("test.count") // hit 1: survives
		Crash("test.count") // hit 2: dies
		os.Exit(7)          // unreachable
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestCrashAfterCountsInChild")
	cmd.Env = append(os.Environ(),
		"FAULT_TEST_CHILD2=1", EnvPoint+"=test.count", EnvAfter+"=2")
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ProcessState.String() != "signal: killed" {
		t.Fatalf("child state %v, want SIGKILL on second hit", err)
	}
}
