// Speedup (Fig 2): regenerate the paper's speedup graph with the
// discrete-event cluster simulator — a 10⁹-photon job self-scheduled over
// 1…60 homogeneous Pentium IV-class machines on a campus LAN — and print
// the curve plus an ASCII plot.
package main

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/sched"
)

func main() {
	params := cluster.Params{
		TotalPhotons: 1e9,
		Policy:       sched.FixedChunk{Photons: 1e6},
		Seed:         1,
	}
	counts := []int{1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60}
	pts := cluster.SpeedupCurve(counts, 210, cluster.CampusLAN(), params)

	fmt.Println("speedup of the distributed Monte Carlo simulation (DES, homogeneous fleet)")
	fmt.Printf("%8s %12s %10s %12s\n", "workers", "makespan", "speedup", "efficiency")
	for _, pt := range pts {
		fmt.Printf("%8d %11.0fs %10.2f %11.1f%%\n",
			pt.Workers, pt.Makespan.Seconds(), pt.Speedup, 100*pt.Efficiency)
	}

	// ASCII speedup plot: x = workers, y = speedup, with the ideal line.
	fmt.Println("\n  speedup")
	const h = 16
	maxK := float64(counts[len(counts)-1])
	for row := h; row >= 0; row-- {
		y := maxK * float64(row) / h
		line := make([]byte, 62)
		for i := range line {
			line[i] = ' '
		}
		for _, pt := range pts {
			x := int(float64(pt.Workers) / maxK * 60)
			if int(pt.Speedup/maxK*float64(h)+0.5) == row {
				line[x] = '*'
			}
		}
		// ideal y = x reference
		xi := int(y / maxK * 60)
		if xi >= 0 && xi < len(line) && line[xi] == ' ' {
			line[xi] = '.'
		}
		fmt.Printf("%5.0f |%s\n", y, strings.TrimRight(string(line), " "))
	}
	fmt.Printf("      +%s\n", strings.Repeat("-", 61))
	fmt.Printf("       0%58s\n", fmt.Sprintf("%d workers", int(maxK)))
	fmt.Println("\n'*' measured speedup, '.' ideal linear speedup")
	last := pts[len(pts)-1]
	fmt.Printf("\nefficiency at %d processors: %.1f%% (paper: ≥97%%)\n",
		last.Workers, 100*last.Efficiency)
}
