// Inverse problem: the reason the paper's forward model exists. A Monte
// Carlo run plays the role of the physical experiment — a pencil beam on an
// unknown tissue phantom, reflectance measured at a ring of distances —
// and the diffusion-model fitter recovers the phantom's absorption and
// scattering coefficients from that measurement alone.
package main

import (
	"flag"
	"fmt"
	"log"

	phomc "repro"
)

func main() {
	photons := flag.Int64("photons", 300_000, "photons for the simulated measurement")
	flag.Parse()

	// The "unknown" phantom: grey-matter-like optics, matched boundary.
	truth := phomc.TransportProperties(1.2, 0.9, 0.02, 1.0)
	model := phomc.HomogeneousSlab("phantom", truth, 400)

	cfg := &phomc.Config{
		Model:  model,
		Radial: &phomc.HistSpec{Min: 0, Max: 20, Bins: 40},
	}
	fmt.Printf("simulating the measurement: %d photons on the unknown phantom...\n", *photons)
	tally, err := phomc.RunParallel(cfg, *photons, 2025, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Fit over the diffusive range (a few transport mean free paths out).
	m := phomc.MeasurementFromTally(tally, 3, 14)
	fmt.Printf("fitting the diffusion model to %d reflectance samples...\n", len(m.Rho))
	res, err := phomc.FitOpticalProperties(m, 1.0, 1.0, phomc.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %12s %12s %10s\n", "", "truth", "recovered", "error")
	row := func(name string, want, got float64) {
		fmt.Printf("%-22s %12.4f %12.4f %9.1f%%\n",
			name, want, got, 100*(got-want)/want)
	}
	row("µa (mm⁻¹)", truth.MuA, res.MuA)
	row("µs′ (mm⁻¹)", truth.MuSPrime(), res.MuSPrime)
	fmt.Printf("\nresidual %.3g after %d forward-model evaluations\n",
		res.Residual, res.Evaluations)
	fmt.Println("\nThis is the calibration loop the paper enables: simulate the forward")
	fmt.Println("problem with Monte Carlo, then invert real measurements against the")
	fmt.Println("analytic model to read tissue optical properties off the surface.")
}
