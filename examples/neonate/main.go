// Neonate vs adult: the superficial-tissue-thickness study the paper cites
// (Fukui, Ajichi & Okada 2003). Thinner scalp/skull/CSF in the neonatal
// head let far more light reach the grey and white matter, which changes
// optode design for infant monitoring. This example runs both Table 1-style
// models and compares penetration, absorption and DPF side by side.
package main

import (
	"flag"
	"fmt"
	"log"

	phomc "repro"
)

func main() {
	photons := flag.Int64("photons", 150_000, "photon packets per model")
	sep := flag.Float64("sep", 10, "optode separation, mm")
	flag.Parse()

	type result struct {
		name  string
		tally *phomc.Tally
		model *phomc.Model
	}
	var results []result
	for _, m := range []*phomc.Model{phomc.AdultHead(), phomc.Neonate()} {
		cfg := &phomc.Config{
			Model:    m,
			Source:   phomc.PencilSource(),
			Detector: phomc.AnnulusDetector(*sep-1, *sep+1),
		}
		tally, err := phomc.RunParallel(cfg, *photons, 13, 0)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{m.Name, tally, m})
	}

	fmt.Printf("adult vs neonatal head, %d photons each, optode at %g mm\n\n",
		*photons, *sep)
	fmt.Printf("%-28s %14s %14s\n", "", results[0].name, results[1].name)
	row := func(label string, f func(*phomc.Tally) float64, format string) {
		fmt.Printf("%-28s "+format+" "+format+"\n", label,
			f(results[0].tally), f(results[1].tally))
	}
	row("diffuse reflectance", (*phomc.Tally).DiffuseReflectance, "%14.4f")
	row("absorbed fraction", (*phomc.Tally).Absorbance, "%14.4f")
	row("reaches CSF (weight)", func(t *phomc.Tally) float64 {
		return t.PenetrationFraction(2)
	}, "%14.5f")
	row("reaches grey matter", func(t *phomc.Tally) float64 {
		return t.PenetrationFraction(3)
	}, "%14.5f")
	row("reaches white matter", func(t *phomc.Tally) float64 {
		return t.PenetrationFraction(4)
	}, "%14.5f")
	row("detected mean path (mm)", (*phomc.Tally).MeanPathlength, "%14.1f")
	row("DPF", func(t *phomc.Tally) float64 { return t.DPF(*sep) }, "%14.1f")

	fmt.Println("\nbrain-layer absorption (grey+white, fraction of launched):")
	for _, r := range results {
		brain := (r.tally.LayerAbsorbed[3] + r.tally.LayerAbsorbed[4]) / r.tally.N()
		fmt.Printf("  %-14s %.5f\n", r.name, brain)
	}
	fmt.Println("\nThe thinner neonatal superficial layers let substantially more light")
	fmt.Println("interrogate the cortex — the effect Fukui et al. quantified and the")
	fmt.Println("reason neonatal NIRS uses closer optode spacings.")
}
