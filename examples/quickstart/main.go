// Quickstart: simulate near-infrared photons through the adult head model
// and print the observables a NIRS experimenter cares about — reflectance,
// detected fraction at a 10 mm optode, differential pathlength factor and
// per-layer penetration.
package main

import (
	"fmt"
	"log"

	phomc "repro"
)

func main() {
	cfg := &phomc.Config{
		Model:    phomc.AdultHead(),
		Source:   phomc.PencilSource(),
		Detector: phomc.DiskDetector(10, 2.5), // optode 10 mm from the source
	}

	const photons = 200_000
	tally, err := phomc.RunParallel(cfg, photons, 42, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d photons through %q\n\n", photons, cfg.Model.Name)
	fmt.Printf("specular reflectance  %6.3f\n", tally.SpecularReflectance())
	fmt.Printf("diffuse reflectance   %6.3f\n", tally.DiffuseReflectance())
	fmt.Printf("absorbed fraction     %6.3f\n", tally.Absorbance())
	fmt.Printf("detected at optode    %d photons (%.2e weight/photon)\n",
		tally.DetectedCount, tally.DetectedFraction())
	fmt.Printf("mean pathlength       %6.1f mm\n", tally.MeanPathlength())
	fmt.Printf("DPF (10 mm optode)    %6.1f\n\n", tally.DPF(10))

	fmt.Println("survival-weighted penetration by layer:")
	for i, l := range cfg.Model.Layers {
		fmt.Printf("  %-14s %8.4f%%\n", l.Name, 100*tally.PenetrationFraction(i))
	}
}
