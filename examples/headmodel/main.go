// Head model (Fig 4): trace photons through the five-layer adult head of
// Table 1 and report where light actually goes — absorption per layer,
// penetration to the CSF/grey/white matter, and an ASCII absorption map
// with the layer boundaries marked.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	phomc "repro"
	"repro/internal/render"
)

func main() {
	photons := flag.Int64("photons", 200_000, "photon packets to launch")
	deterministic := flag.Bool("deterministic", false,
		"use classical weight-splitting boundaries instead of probabilistic Fresnel")
	flag.Parse()

	cfg := phomc.Fig4Config(50, 40)
	if *deterministic {
		cfg.Boundary = phomc.BoundaryDeterministic
	}

	fmt.Printf("tracing %d photons through the adult head (boundaries: %v)...\n",
		*photons, cfg.Boundary)
	tally, err := phomc.RunParallel(cfg, *photons, 11, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndiffuse reflectance %.3f, absorbed %.3f\n",
		tally.DiffuseReflectance(), tally.Absorbance())
	fmt.Printf("%-14s %12s %16s\n", "layer", "absorbed", "penetration")
	for i, l := range cfg.Model.Layers {
		fmt.Printf("%-14s %11.4f%% %15.4f%%\n",
			l.Name, 100*tally.LayerAbsorbed[i]/tally.N(), 100*tally.PenetrationFraction(i))
	}

	g := tally.AbsGrid.Clone()
	g.Threshold(0.001)
	rows := render.Downsample(render.CropDepth(g.ProjectY()), 100, 34)
	fmt.Println()
	render.Frame(os.Stdout,
		"absorbed weight, x–z projection (scalp 0–3, skull 3–10, CSF 10–12, grey 12–16, white >16 mm)",
		rows, "x", "depth z")

	fmt.Println("\nAs the paper reports: most photons are reflected before entering the")
	fmt.Printf("CSF (only %.1f%% of launched weight gets there), and a small fraction\n",
		100*tally.PenetrationFraction(2))
	fmt.Printf("(%.2f%%) penetrates all the way into the white matter.\n",
		100*tally.PenetrationFraction(4))
}
