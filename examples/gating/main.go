// Gating: the paper's "gated differential pathlengths" feature. In a real
// time-gated experiment the source and detector operate only between
// pulses, so only photons within a pathlength (time-of-flight) window are
// recorded. This example sweeps gate windows over the adult head and shows
// how the gate selects shallow, direct photons versus deep, late ones.
package main

import (
	"fmt"
	"log"

	phomc "repro"
)

func main() {
	const (
		photons = 150_000
		sep     = 10.0 // optode separation, mm
	)
	base := func(gate phomc.Gate) *phomc.Config {
		return &phomc.Config{
			Model:    phomc.AdultHead(),
			Source:   phomc.PencilSource(),
			Detector: phomc.AnnulusDetector(sep-1, sep+1),
			Gate:     gate,
		}
	}

	fmt.Printf("gated detection at a %g mm optode on the adult head (%d photons per run)\n\n",
		sep, photons)
	fmt.Printf("%-18s %10s %12s %12s %10s\n",
		"gate (mm path)", "detected", "weight/ph", "mean path", "mean depth")

	gates := []struct {
		name string
		g    phomc.Gate
	}{
		{"open", phomc.Gate{}},
		{"0–30", phomc.Gate{MaxPath: 30}},
		{"0–60", phomc.Gate{MaxPath: 60}},
		{"60–120", phomc.Gate{MinPath: 60, MaxPath: 120}},
		{"120–300", phomc.Gate{MinPath: 120, MaxPath: 300}},
		{"300+", phomc.Gate{MinPath: 300}},
	}
	for _, gc := range gates {
		tally, err := phomc.Run(base(gc.g), photons, 99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %10d %12.2e %9.1f mm %7.2f mm\n",
			gc.name, tally.DetectedCount, tally.DetectedFraction(),
			tally.MeanPathlength(), tally.DepthStats.Mean())
	}

	fmt.Println("\nLate gates select photons that wandered deeper before escaping —")
	fmt.Println("the handle experimenters use to bias sensitivity toward the cortex.")
}
