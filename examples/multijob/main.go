// Multijob: the simulation service end to end, in one process. A job
// registry with weighted fair-share scheduling serves three workers; two
// different head-model jobs (one weighted 3×) run concurrently over the
// shared fleet, a third identical submission is answered straight from the
// content-addressed result cache, and the HTTP API reports fleet health.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	phomc "repro"
)

func main() {
	reg := phomc.NewJobRegistry(phomc.RegistryOptions{
		Policy: phomc.FairSharePolicy(),
	})

	// The shared worker fleet (in-process TCP, as mcworker would connect).
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go reg.Serve(l)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			phomc.WorkTCP(l.Addr().String(), phomc.WorkerOptions{
				Name: fmt.Sprintf("pc-%d", i),
			})
		}(i)
	}

	// Two concurrent jobs: the adult head (weight 3) and a neonate head.
	adult := phomc.NewSpec(phomc.AdultHead(),
		phomc.SourceSpec{Kind: "pencil"},
		phomc.DetectorSpec{Kind: "annulus", RMin: 10, RMax: 30})
	neonate := phomc.NewSpec(phomc.Neonate(),
		phomc.SourceSpec{Kind: "pencil"},
		phomc.DetectorSpec{Kind: "annulus", RMin: 5, RMax: 15})

	a, err := reg.Submit(phomc.ServiceJobSpec{
		Spec: adult, TotalPhotons: 40_000, ChunkPhotons: 2_000, Seed: 1,
		Weight: 3, Label: "adult-head",
	})
	if err != nil {
		log.Fatal(err)
	}
	b, err := reg.Submit(phomc.ServiceJobSpec{
		Spec: neonate, TotalPhotons: 40_000, ChunkPhotons: 2_000, Seed: 2,
		Weight: 1, Label: "neonate",
	})
	if err != nil {
		log.Fatal(err)
	}

	resA, err := a.Job.Wait(5 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	resB, err := b.Job.Wait(5 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adult-head: %d photons, detected fraction %.4g (%v)\n",
		resA.Tally.Launched, resA.Tally.DetectedFraction(), resA.Elapsed.Round(time.Millisecond))
	fmt.Printf("neonate:    %d photons, detected fraction %.4g (%v)\n",
		resB.Tally.Launched, resB.Tally.DetectedFraction(), resB.Elapsed.Round(time.Millisecond))

	// Resubmit the adult head verbatim: a cache hit, no photons launched.
	dup, err := reg.Submit(phomc.ServiceJobSpec{
		Spec: adult, TotalPhotons: 40_000, ChunkPhotons: 2_000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmission: cached=%v\n", dup.Cached)

	// Fleet health over the HTTP API, exactly as cmd/mcqueue serves it.
	ts := httptest.NewServer(phomc.NewServiceHandler(reg))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats phomc.RegistryStats
	json.NewDecoder(resp.Body).Decode(&stats)
	fmt.Printf("stats: %d jobs done, %d chunks assigned, %d cache hit(s), policy %s\n",
		stats.JobsDone, stats.ChunksAssigned, stats.CacheHits, stats.Policy)
}
