// Banana (Fig 3): map the most common paths of detected photons through
// homogeneous white matter. The spatial sensitivity profile between a laser
// source and a detector forms the classic "banana" shape; this example
// renders it as an ASCII heat map, exactly as the paper's Fig 3 does in
// image form (granularity 50³, thresholded, detected photons only).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	phomc "repro"
	"repro/internal/render"
)

func main() {
	photons := flag.Int64("photons", 400_000, "photon packets to launch")
	sep := flag.Float64("sep", 3, "source–detector separation, mm")
	flag.Parse()

	// Granularity 50³ over a 12 mm cube around the optode axis.
	cfg := phomc.Fig3Config(*sep, 1.0, 50, 12)

	fmt.Printf("tracing %d photons through homogeneous white matter (µs′=9.1, µa=0.014 mm⁻¹)...\n",
		*photons)
	tally, err := phomc.RunParallel(cfg, *photons, 7, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("detected %d photon paths at x = %g mm (%.2e of launched)\n",
		tally.DetectedCount, *sep, tally.DetectedFraction())
	fmt.Printf("mean pathlength %.1f mm → DPF %.1f; mean probing depth %.2f mm\n\n",
		tally.MeanPathlength(), tally.DPF(*sep), tally.DepthStats.Mean())

	// Threshold away rare excursions, as the paper does, then project onto
	// the x–z plane.
	g := tally.PathGrid.Clone()
	g.Threshold(0.02)
	rows := render.Downsample(render.CropDepth(g.ProjectY()), 100, 34)
	render.Frame(os.Stdout,
		fmt.Sprintf("detected-photon path density — source at x=0, detector at x=%g mm (log scale)", *sep),
		rows, "x", "depth z")
	fmt.Println("\nThe bright arc connecting source and detector is the banana:")
	fmt.Println("photons that reach the detector preferentially sample that volume.")
}
