// Distributed: the full DataManager/worker pipeline on one machine. A
// server is started on a loopback port, a small fleet of TCP workers with
// different speeds (one even crashes mid-job) connects to it, and the
// reduced tally is compared against a purely local run of the same seed —
// they must agree to floating-point merge order.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	phomc "repro"
)

func main() {
	spec := phomc.NewSpec(
		phomc.AdultHead(),
		phomc.SourceSpec{Kind: "pencil"},
		phomc.DetectorSpec{Kind: "annulus", RMin: 5, RMax: 15},
	)
	const (
		total = 60_000
		chunk = 3_000
		seed  = 2006
	)

	dm, err := phomc.NewDataManager(phomc.JobOptions{
		Spec:         spec,
		TotalPhotons: total,
		ChunkPhotons: chunk,
		Seed:         seed,
		ChunkTimeout: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go dm.Serve(l)
	fmt.Printf("datamanager on %s: %d photons in %d chunks\n",
		l.Addr(), total, dm.NumChunks())

	// A heterogeneous fleet: a fast PC, two slower ones, and a flaky one
	// that dies after two chunks (its lost chunk is reassigned).
	workers := []phomc.WorkerOptions{
		{Name: "lab-fast"},
		{Name: "lab-slow-1", Slowdown: 2},
		{Name: "lab-slow-2", Slowdown: 4},
		{Name: "lab-flaky", FailAfterChunks: 2},
	}
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w phomc.WorkerOptions) {
			defer wg.Done()
			stats, err := phomc.WorkTCP(l.Addr().String(), w)
			if err != nil {
				fmt.Printf("  %-12s stopped: %v\n", w.Name, err)
				return
			}
			fmt.Printf("  %-12s computed %d chunks (%d photons)\n",
				w.Name, stats.Chunks, stats.Photons)
		}(w)
	}

	res, err := dm.Wait(5 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("\njob done in %v — %d chunks, %d reassigned after the crash\n",
		res.Elapsed.Round(time.Millisecond), res.Chunks, res.Reassigned)
	fmt.Printf("diffuse reflectance %.4f, detected %d photons, mean path %.1f mm\n",
		res.Tally.DiffuseReflectance(), res.Tally.DetectedCount, res.Tally.MeanPathlength())

	// Reproducibility check: recompute the identical streams locally.
	cfg, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	local := phomc.NewTally(cfg)
	for s := 0; s < dm.NumChunks(); s++ {
		part, err := phomc.RunStream(cfg, chunk, seed, s, dm.NumChunks())
		if err != nil {
			log.Fatal(err)
		}
		if err := local.Merge(part); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nlocal replay of the same streams: detected %d photons — %s\n",
		local.DetectedCount,
		map[bool]string{true: "identical ✓", false: "MISMATCH ✗"}[local.DetectedCount == res.Tally.DetectedCount])
}
