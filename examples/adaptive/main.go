// Adaptive: precision-targeted jobs end to end. Instead of guessing a
// photon budget — and over-simulating 10–100× to be safe — a job names the
// precision it needs ("diffuse reflectance to 1% relative standard error")
// and the service runs exactly as many chunks as that takes: workers
// stream variance-carrying tallies, the registry re-estimates the RSE as
// batches land, and the job finalizes the moment the target is met.
//
// The walkthrough submits the same physics three ways — a conservative
// fixed budget, a 1% precision target, and a looser 3% resubmission served
// from the meets-or-exceeds cache — and compares photons spent.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	phomc "repro"
)

func main() {
	reg := phomc.NewJobRegistry(phomc.RegistryOptions{})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go reg.Serve(l)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			phomc.WorkTCP(l.Addr().String(), phomc.WorkerOptions{
				Name: fmt.Sprintf("pc-%d", i),
			})
		}(i)
	}

	spec := phomc.NewSpec(phomc.AdultHead(),
		phomc.SourceSpec{Kind: "pencil"},
		phomc.DetectorSpec{Kind: "annulus", RMin: 10, RMax: 30})
	spec.TrackMoments = true // moments make fixed runs precision-comparable

	// 1. The old way: a conservative fixed budget, sized by gut feeling.
	const conservative = 400_000
	fixed, err := reg.Submit(phomc.ServiceJobSpec{
		Spec: spec, TotalPhotons: conservative, ChunkPhotons: 2_000, Seed: 1,
		Label: "fixed-budget",
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The adaptive way: state the precision, let the stopping rule pay.
	target := &phomc.PrecisionTarget{
		Observable: phomc.ObsDiffuse,
		RelErr:     0.01, // 1% relative standard error on Rd
	}
	adaptive, err := reg.Submit(phomc.ServiceJobSpec{
		Spec: spec, ChunkPhotons: 2_000, Seed: 1, Target: target,
		Label: "precision-1pct",
	})
	if err != nil {
		log.Fatal(err)
	}

	fixedRes, err := fixed.Job.Wait(10 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	adaptiveRes, err := adaptive.Job.Wait(10 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fEst, fCI := fixedRes.Tally.EstimateCI(phomc.ObsDiffuse)
	aEst, aCI := adaptiveRes.Tally.EstimateCI(phomc.ObsDiffuse)
	fmt.Printf("fixed budget:    Rd = %.5f ± %.5f after %7d photons\n",
		fEst, fCI, fixedRes.Tally.Launched)
	fmt.Printf("precision 1%%:    Rd = %.5f ± %.5f after %7d photons (target met: %v)\n",
		aEst, aCI, adaptiveRes.Tally.Launched, adaptiveRes.TargetMet)
	fmt.Printf("photon savings:  %.1f× fewer than the conservative budget\n",
		float64(fixedRes.Tally.Launched)/float64(adaptiveRes.Tally.Launched))

	// 3. A looser request for the same physics costs nothing: the stored
	// 1% run already meets-or-exceeds 3%.
	loose, err := reg.Submit(phomc.ServiceJobSpec{
		Spec: spec, ChunkPhotons: 2_000, Seed: 1,
		Target: &phomc.PrecisionTarget{
			Observable: phomc.ObsDiffuse,
			RelErr:     0.03,
			MinPhotons: 16_000,
		},
		Label: "precision-3pct",
	})
	if err != nil {
		log.Fatal(err)
	}
	looseRes, err := loose.Job.Wait(time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("precision 3%%:    served from cache=%v, %d photons, zero new chunks\n",
		loose.Cached, looseRes.Tally.Launched)

	st := adaptive.Job.Status()
	fmt.Printf("\nstatus view:     state=%s estimate=%.5f rse=%.3f%% ci95=%.5f photonsRun=%d\n",
		st.State, st.Estimate, 100*st.RelStdErr, st.CI95, st.PhotonsRun)
}
