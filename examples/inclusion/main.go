// Inclusion: embed an absorbing sphere (a tumour-like perturbation) in the
// voxelized adult head and compare diffuse reflectance, detected weight and
// per-medium absorption against the unperturbed model — the heterogeneous
// scenario the layered slab geometry cannot express.
package main

import (
	"flag"
	"fmt"
	"log"

	phomc "repro"
)

func main() {
	photons := flag.Int64("photons", 100_000, "photon packets to launch per run")
	depth := flag.Float64("depth", 14, "inclusion centre depth in mm (14 = grey matter)")
	radius := flag.Float64("radius", 5, "inclusion radius in mm")
	muA := flag.Float64("mua", 0.3, "inclusion absorption coefficient in 1/mm")
	flag.Parse()

	// Voxelize the Table 1 adult head: 120×120 mm wide, 40 mm deep, with
	// 0.5 mm depth rows so every layer boundary (3/10/12/16 mm) aligns
	// with a voxel plane.
	clean, err := phomc.VoxelizeModel(phomc.AdultHead(), 120, 120, 80, 1, 1, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	perturbed := clean.Clone()
	label, err := perturbed.AddMedium("inclusion",
		phomc.TransportProperties(2.0, 0.9, *muA, 1.4))
	if err != nil {
		log.Fatal(err)
	}
	painted := perturbed.PaintSphere(label, 0, 0, *depth, *radius)
	fmt.Printf("absorbing sphere: r=%.1f mm at depth %.1f mm, µa=%.2f/mm (%d voxels, %.2f%% of grid)\n\n",
		*radius, *depth, *muA, painted, 100*perturbed.VolumeFraction(label))

	det := phomc.AnnulusDetector(5, 15)
	run := func(name string, g *phomc.VoxelGrid) *phomc.Tally {
		cfg := &phomc.Config{Geometry: g, Detector: det}
		tally, err := phomc.RunParallel(cfg, *photons, 29, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s Rd %.4f  detected %.5f  absorbed %.4f  lateral-loss %.4f\n",
			name, tally.DiffuseReflectance(), tally.DetectedFraction(),
			tally.Absorbance(), tally.LateralFraction())
		return tally
	}

	fmt.Printf("tracing %d photons per scenario...\n", *photons)
	base := run("unperturbed", clean)
	with := run("inclusion", perturbed)

	fmt.Printf("\n%-14s %14s %14s\n", "medium", "absorbed", "absorbed+inc")
	for i := 0; i < clean.NumRegions(); i++ {
		fmt.Printf("%-14s %13.4f%% %13.4f%%\n", clean.RegionName(i),
			100*base.LayerAbsorbed[i]/base.N(), 100*with.LayerAbsorbed[i]/with.N())
	}
	fmt.Printf("%-14s %13.4f%% %13.4f%%\n", "inclusion", 0.0,
		100*with.LayerAbsorbed[label]/with.N())

	dRd := with.DiffuseReflectance() - base.DiffuseReflectance()
	dDet := with.DetectedFraction() - base.DetectedFraction()
	fmt.Printf("\nthe absorber removes %.4f of reflectance and shifts detected weight by %+.5f\n", -dRd, dDet)
	fmt.Println("— the contrast a NIRS probe sweep would localise the inclusion with.")
}
