package phomc

import (
	"net/http"

	"repro/internal/obs"
	"repro/internal/service"
)

// Multi-job simulation service, re-exported from internal/service: a
// long-lived registry of concurrent jobs drained by one shared worker
// fleet, with cross-job scheduling policies, a content-addressed result
// cache and an HTTP JSON control plane (see cmd/mcqueue).
type (
	// JobRegistry owns concurrent simulation jobs and the shared fleet.
	JobRegistry = service.Registry
	// RegistryOptions configure a JobRegistry (policy, cache, retention).
	RegistryOptions = service.Options
	// ServiceJobSpec describes one job submitted to a registry.
	ServiceJobSpec = service.JobSpec
	// ServiceJob is a handle on a submitted job (Wait, Status, Done).
	ServiceJob = service.Job
	// JobStatus is a point-in-time job snapshot with progress counters.
	JobStatus = service.JobStatus
	// RegistryStats is the fleet/queue health snapshot (GET /stats).
	RegistryStats = service.Stats
	// SchedulingPolicy picks which job's chunk an idle worker receives.
	SchedulingPolicy = service.Policy
	// MetricsRegistry collects the service's counters, gauges and
	// histograms and serves them as Prometheus text exposition. Pass one
	// as RegistryOptions.Obs (or WorkerOptions.Obs / JobOptions.Obs) and
	// mount NewMetricsHandler wherever the embedder's mux lives.
	MetricsRegistry = obs.Registry
	// JobEvent is one entry of a job's bounded lifecycle trace
	// (GET /jobs/{id}/events).
	JobEvent = obs.Event
	// ChunkSpan is one chunk's cross-process timing decomposition —
	// queue-wait, wire+hold, compute, reduce — from a job's bounded span
	// ring (GET /jobs/{id}/spans).
	ChunkSpan = obs.Span
	// FleetSession is one live worker session's telemetry profile:
	// server-side accounting joined with the worker's own piggybacked
	// report (GET /fleet).
	FleetSession = service.SessionStatus
	// AdmissionPolicy decides per tenant whether a fresh submission is
	// accepted (RegistryOptions.Admission); refusals surface as
	// ShedErrors (HTTP 429 + Retry-After).
	AdmissionPolicy = service.AdmissionPolicy
	// TenantTable maps tenant names to admission/scheduling classes — the
	// mcqueue -tenants payload (service.LoadTenantTable reads it).
	TenantTable = service.TenantTable
	// TenantClass is one tenant's rate, quota and weight envelope.
	TenantClass = service.TenantClass
	// ShedError reports a refused submission: tenant, reason
	// (cap | tenant_rate | tenant_quota) and a computed retry hint.
	ShedError = service.ShedError
	// TenantStatus is one tenant's live rollup (GET /tenants, GET /fleet).
	TenantStatus = service.TenantStatus
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewMetricsHandler serves reg as a Prometheus text-exposition scrape
// endpoint (the body of GET /metrics).
func NewMetricsHandler(reg *MetricsRegistry) http.Handler { return reg.Handler() }

// NewJobRegistry returns an empty multi-job registry. Submit jobs with
// Submit, serve workers with Serve/HandleConn, and expose the HTTP API
// with NewServiceHandler.
func NewJobRegistry(opts RegistryOptions) *JobRegistry { return service.New(opts) }

// NewServiceHandler wraps a registry in the HTTP JSON API:
// POST /jobs, GET /jobs, GET /jobs/{id}, GET /jobs/{id}/result,
// GET /jobs/{id}/events, GET /jobs/{id}/spans, DELETE /jobs/{id},
// GET /stats, GET /fleet, GET /tenants.
func NewServiceHandler(reg *JobRegistry) http.Handler {
	return service.NewAPI(reg).Handler()
}

// Cross-job scheduling policies.

// FIFOPolicy drains jobs strictly in submission order.
func FIFOPolicy() SchedulingPolicy { return service.FIFO() }

// PriorityPolicy serves the highest JobSpec.Priority first.
func PriorityPolicy() SchedulingPolicy { return service.Priority() }

// FairSharePolicy interleaves concurrent jobs in proportion to their
// weights (start-time fair queueing over assigned photons).
func FairSharePolicy() SchedulingPolicy { return service.FairShare() }

// TenantFairSharePolicy stacks fair queueing two levels deep: fleet
// throughput splits across tenants by their table weights, then within a
// tenant across its jobs — so no tenant can grow its share by submitting
// more jobs.
func TenantFairSharePolicy() SchedulingPolicy { return service.TenantFairShare() }

// TokenBucketAdmission builds the per-tenant token-bucket admission
// policy from a tenant table (pass as RegistryOptions.Admission, with the
// table itself as RegistryOptions.Tenants for scheduling weights).
func TokenBucketAdmission(table *TenantTable) AdmissionPolicy {
	return service.NewTokenBucket(table, nil)
}
