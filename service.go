package phomc

import (
	"net/http"

	"repro/internal/service"
)

// Multi-job simulation service, re-exported from internal/service: a
// long-lived registry of concurrent jobs drained by one shared worker
// fleet, with cross-job scheduling policies, a content-addressed result
// cache and an HTTP JSON control plane (see cmd/mcqueue).
type (
	// JobRegistry owns concurrent simulation jobs and the shared fleet.
	JobRegistry = service.Registry
	// RegistryOptions configure a JobRegistry (policy, cache, retention).
	RegistryOptions = service.Options
	// ServiceJobSpec describes one job submitted to a registry.
	ServiceJobSpec = service.JobSpec
	// ServiceJob is a handle on a submitted job (Wait, Status, Done).
	ServiceJob = service.Job
	// JobStatus is a point-in-time job snapshot with progress counters.
	JobStatus = service.JobStatus
	// RegistryStats is the fleet/queue health snapshot (GET /stats).
	RegistryStats = service.Stats
	// SchedulingPolicy picks which job's chunk an idle worker receives.
	SchedulingPolicy = service.Policy
)

// NewJobRegistry returns an empty multi-job registry. Submit jobs with
// Submit, serve workers with Serve/HandleConn, and expose the HTTP API
// with NewServiceHandler.
func NewJobRegistry(opts RegistryOptions) *JobRegistry { return service.New(opts) }

// NewServiceHandler wraps a registry in the HTTP JSON API:
// POST /jobs, GET /jobs, GET /jobs/{id}, GET /jobs/{id}/result,
// DELETE /jobs/{id}, GET /stats.
func NewServiceHandler(reg *JobRegistry) http.Handler {
	return service.NewAPI(reg).Handler()
}

// Cross-job scheduling policies.

// FIFOPolicy drains jobs strictly in submission order.
func FIFOPolicy() SchedulingPolicy { return service.FIFO() }

// PriorityPolicy serves the highest JobSpec.Priority first.
func PriorityPolicy() SchedulingPolicy { return service.Priority() }

// FairSharePolicy interleaves concurrent jobs in proportion to their
// weights (start-time fair queueing over assigned photons).
func FairSharePolicy() SchedulingPolicy { return service.FairShare() }
