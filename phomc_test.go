package phomc_test

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	phomc "repro"
	"repro/internal/grid"
)

func TestQuickstartFlow(t *testing.T) {
	cfg := &phomc.Config{
		Model:    phomc.AdultHead(),
		Source:   phomc.PencilSource(),
		Detector: phomc.DiskDetector(10, 3),
	}
	tally, err := phomc.RunParallel(cfg, 5000, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tally.Launched != 5000 {
		t.Fatalf("launched %d", tally.Launched)
	}
	if tally.DiffuseReflectance() <= 0 || tally.DiffuseReflectance() >= 1 {
		t.Fatalf("Rd = %g out of range", tally.DiffuseReflectance())
	}
	if bal := tally.EnergyBalance(); math.Abs(bal) > 1e-6 {
		t.Fatalf("energy balance %g", bal)
	}
}

func TestModelConstructors(t *testing.T) {
	for _, m := range []*phomc.Model{
		phomc.AdultHead(),
		phomc.AdultHeadCustom(5, 8),
		phomc.Neonate(),
		phomc.HomogeneousWhiteMatter(),
		phomc.HomogeneousSlab("x", phomc.TransportProperties(1, 0.9, 0.01, 1.4), 10),
	} {
		if err := m.Validate(); err != nil {
			t.Errorf("model %q invalid: %v", m.Name, err)
		}
	}
}

func TestSourcesRun(t *testing.T) {
	for _, src := range []phomc.Source{
		phomc.PencilSource(),
		phomc.GaussianSource(1.5),
		phomc.UniformSource(2),
	} {
		cfg := &phomc.Config{Model: phomc.AdultHead(), Source: src}
		if _, err := phomc.Run(cfg, 200, 1); err != nil {
			t.Errorf("source %s failed: %v", src.Describe(), err)
		}
	}
}

func TestGatedDifferentialPathlengths(t *testing.T) {
	mk := func(gate phomc.Gate) *phomc.Config {
		return &phomc.Config{
			Model:    phomc.AdultHead(),
			Detector: phomc.AnnulusDetector(5, 15),
			Gate:     gate,
		}
	}
	open, err := phomc.Run(mk(phomc.Gate{}), 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := phomc.Run(mk(phomc.Gate{MinPath: 0, MaxPath: 60}), 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if gated.DetectedWeight >= open.DetectedWeight {
		t.Fatal("gate did not reject any photons")
	}
	if gated.MeanPathlength() >= open.MeanPathlength() {
		t.Fatal("early gate should shorten the mean pathlength")
	}
}

func TestFig3PresetSmall(t *testing.T) {
	// Scaled-down Fig 3: close detector, coarse grid, few photons.
	cfg := phomc.Fig3Config(3, 1, 20, 12)
	tally, err := phomc.Run(cfg, 15000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tally.DetectedCount == 0 {
		t.Fatal("banana run detected nothing")
	}
	if tally.PathGrid.Total() == 0 {
		t.Fatal("path grid empty")
	}
	// The sensitivity map must dip below the surface between source and
	// detector (it is a banana, not a surface streak): some mass deeper
	// than 1 mm.
	profile := tally.PathGrid.DepthProfile()
	deep := 0.0
	for k := 2; k < len(profile); k++ { // below ~1.2 mm for 12 mm/20 voxels
		deep += profile[k]
	}
	if deep == 0 {
		t.Fatal("no detected-photon density below the surface layer")
	}

	// Quantitative banana arc: somewhere between source (x=0) and detector
	// (x=3 mm) the most-probed depth dips below the surface voxel row.
	peaks := grid.PeakDepthPerColumn(tally.PathGrid.ProjectY())
	srcCol, _, _, _ := tally.PathGrid.Voxel(0, 0, 0)
	detCol, _, _, _ := tally.PathGrid.Voxel(3, 0, 0)
	dipped := false
	for x := srcCol; x <= detCol; x++ {
		if peaks[x] >= 1 {
			dipped = true
			break
		}
	}
	if !dipped {
		t.Fatalf("no sub-surface sensitivity peak between the optodes: %v",
			peaks[srcCol:detCol+1])
	}
}

func TestFig4PresetSmall(t *testing.T) {
	cfg := phomc.Fig4Config(16, 32)
	tally, err := phomc.Run(cfg, 8000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tally.AbsGrid.Total() == 0 {
		t.Fatal("absorption grid empty")
	}
	// Fig 4 claims: most photons never reach the CSF; some reach white
	// matter.
	if f := tally.PenetrationFraction(2); f > 0.5 {
		t.Fatalf("CSF penetration %g, expected minority", f)
	}
	if f := tally.PenetrationFraction(4); f <= 0 {
		t.Fatal("white matter penetration should be positive")
	}
}

func TestDataManagerPublicAPI(t *testing.T) {
	spec := phomc.NewSpec(
		phomc.HomogeneousSlab("slab", phomc.TransportProperties(1.9, 0.9, 0.018, 1.4), 5),
		phomc.SourceSpec{Kind: "pencil"},
		phomc.DetectorSpec{Kind: "annulus", RMin: 1, RMax: 4},
	)
	dm, err := phomc.NewDataManager(phomc.JobOptions{
		Spec: spec, TotalPhotons: 2000, ChunkPhotons: 250, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go dm.Serve(l)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			phomc.WorkTCP(l.Addr().String(), phomc.WorkerOptions{
				Name: []string{"alpha", "beta"}[i],
			})
		}(i)
	}
	res, err := dm.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if res.Tally.Launched != 2000 {
		t.Fatalf("launched %d", res.Tally.Launched)
	}
	if len(res.Workers) != 2 {
		t.Fatalf("workers recorded: %d", len(res.Workers))
	}
}

func TestBoundaryModesPublic(t *testing.T) {
	for _, mode := range []phomc.BoundaryMode{
		phomc.BoundaryProbabilistic, phomc.BoundaryDeterministic,
	} {
		cfg := &phomc.Config{Model: phomc.AdultHead(), Boundary: mode}
		if _, err := phomc.Run(cfg, 300, 1); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}
